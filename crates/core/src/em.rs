//! The EM inference algorithm for the TDH model (§3.2 of the paper).
//!
//! Each iteration computes, in a single pass over records and answers, the
//! E-step conditionals of Fig. 4 — the truth posteriors `f^v_{o,s}` /
//! `f^v_{o,w}` and the relationship-type posteriors `g^t_{o,s}` / `g^t_{o,w}`
//! — and folds them straight into the M-step accumulators of Eq. (9)–(11).
//! The MAP objective `F` (Eq. 8) is tracked for convergence.

use tdh_data::{Dataset, ObservationIndex};

use crate::model::{prior_mean, TdhConfig, TdhModel};

/// Diagnostics from one EM run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Number of EM iterations performed.
    pub iterations: usize,
    /// Final value of the MAP objective `F` (up to additive constants).
    pub objective: f64,
    /// Whether the relative-improvement stopping rule fired before
    /// `max_iters`.
    pub converged: bool,
    /// Objective value before each parameter update (one entry per
    /// iteration). Non-decreasing up to floating-point noise — EM ascends
    /// the MAP objective.
    pub trace: Vec<f64>,
}

/// Clamp for logarithms of vanishing probabilities.
const LOG_FLOOR: f64 = 1e-300;

pub(crate) fn run_em(model: &mut TdhModel, ds: &Dataset, idx: &ObservationIndex) -> FitReport {
    let cfg = *model.config();
    initialize(model, ds, idx, &cfg);

    let mut trace = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    let mut prev_obj = f64::NEG_INFINITY;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        let obj = em_iteration(model, ds, idx, &cfg);
        trace.push(obj);
        if obj.is_finite() && prev_obj.is_finite() {
            let rel = (obj - prev_obj).abs() / prev_obj.abs().max(1.0);
            if rel < cfg.tol {
                converged = true;
                break;
            }
        }
        prev_obj = obj;
    }

    FitReport {
        iterations,
        objective: *trace.last().unwrap_or(&f64::NEG_INFINITY),
        converged,
        trace,
    }
}

/// Initial parameters: priors' means for `φ`/`ψ`, claim-frequency smoothing
/// for `μ` (a vote-shaped start converges in a handful of iterations and is
/// deterministic).
fn initialize(model: &mut TdhModel, ds: &Dataset, idx: &ObservationIndex, cfg: &TdhConfig) {
    model.phi = vec![prior_mean(&cfg.alpha); ds.n_sources()];
    let n_workers = ds.n_workers().max(idx.n_workers());
    model.psi = vec![prior_mean(&cfg.beta); n_workers];
    model.mu = idx
        .views()
        .iter()
        .map(|view| {
            let k = view.n_candidates();
            if k == 0 {
                return Vec::new();
            }
            let total: f64 = (0..k)
                .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 1.0)
                .sum();
            (0..k)
                .map(|v| (f64::from(view.source_count[v] + view.worker_count[v]) + 1.0) / total)
                .collect()
        })
        .collect();
    model.n_ov = vec![Vec::new(); idx.n_objects()];
    model.d_o = vec![0.0; idx.n_objects()];
}

/// One E+M pass. Returns the MAP objective evaluated at the *pre-update*
/// parameters (the quantity EM is guaranteed not to decrease).
fn em_iteration(
    model: &mut TdhModel,
    _ds: &Dataset,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
) -> f64 {
    let n_obj = idx.n_objects();
    let mut acc_mu: Vec<Vec<f64>> = model.mu.iter().map(|mu| vec![0.0; mu.len()]).collect();
    let mut acc_phi = vec![[0.0f64; 3]; model.phi.len()];
    let mut acc_psi = vec![[0.0f64; 3]; model.psi.len()];
    let mut log_lik = 0.0f64;

    let mut posterior = Vec::new();
    for oi in 0..n_obj {
        let view = &idx.views()[oi];
        let k = view.n_candidates();
        if k == 0 {
            continue;
        }
        let mu = &model.mu[oi];

        // --- Records ---
        for &(s, c) in &view.sources {
            let phi = &model.phi[s.index()];
            posterior.clear();
            let mut z = 0.0;
            for t in 0..k as u32 {
                let p =
                    TdhModel::source_likelihood_cfg(view, phi, c, t, cfg.ablation) * mu[t as usize];
                posterior.push(p);
                z += p;
            }
            if z <= 0.0 {
                continue;
            }
            log_lik += z.max(LOG_FLOOR).ln();
            for (t, p) in posterior.iter().enumerate() {
                acc_mu[oi][t] += p / z;
            }
            // g^1: the claim was the exact truth.
            let n1 = phi[0] * mu[c as usize];
            // g^2: the claim was a generalization of the truth — the truth
            // is then one of the claim's candidate descendants (Fig. 4).
            let n2 = if view.in_oh && cfg.ablation.hierarchy_aware {
                view.descendants[c as usize]
                    .iter()
                    .map(|&v| phi[1] / view.ancestors[v as usize].len() as f64 * mu[v as usize])
                    .sum::<f64>()
            } else {
                phi[1] * mu[c as usize]
            };
            let g1 = n1 / z;
            let g2 = n2 / z;
            let g3 = ((z - n1 - n2) / z).max(0.0);
            let a = &mut acc_phi[s.index()];
            a[0] += g1;
            a[1] += g2;
            a[2] += g3;
        }

        // --- Answers ---
        for &(w, c) in &view.workers {
            let psi = model.psi[w.index()];
            posterior.clear();
            let mut z = 0.0;
            for t in 0..k as u32 {
                let p = TdhModel::worker_likelihood_cfg(view, &psi, c, t, cfg.ablation)
                    * mu[t as usize];
                posterior.push(p);
                z += p;
            }
            if z <= 0.0 {
                continue;
            }
            log_lik += z.max(LOG_FLOOR).ln();
            for (t, p) in posterior.iter().enumerate() {
                acc_mu[oi][t] += p / z;
            }
            let n1 = psi[0] * mu[c as usize];
            let n2 = if view.in_oh && cfg.ablation.hierarchy_aware {
                view.descendants[c as usize]
                    .iter()
                    .map(|&v| {
                        TdhModel::worker_likelihood_cfg(view, &psi, c, v, cfg.ablation)
                            * mu[v as usize]
                    })
                    .sum::<f64>()
            } else {
                psi[1] * mu[c as usize]
            };
            let g1 = n1 / z;
            let g2 = n2 / z;
            let g3 = ((z - n1 - n2) / z).max(0.0);
            let a = &mut acc_psi[w.index()];
            a[0] += g1;
            a[1] += g2;
            a[2] += g3;
        }
    }

    // Log-priors (up to constants), completing Eq. (8).
    let mut log_prior = 0.0;
    for phi in &model.phi {
        for t in 0..3 {
            log_prior += (cfg.alpha[t] - 1.0) * phi[t].max(LOG_FLOOR).ln();
        }
    }
    for psi in &model.psi {
        for t in 0..3 {
            log_prior += (cfg.beta[t] - 1.0) * psi[t].max(LOG_FLOOR).ln();
        }
    }
    for mu in &model.mu {
        for &m in mu {
            log_prior += (cfg.gamma - 1.0) * m.max(LOG_FLOOR).ln();
        }
    }

    // --- M-step: Eq. (9), (10), (11) ---
    for oi in 0..n_obj {
        let view = &idx.views()[oi];
        let k = view.n_candidates();
        if k == 0 {
            continue;
        }
        let evidence = (view.sources.len() + view.workers.len()) as f64;
        let d = evidence + k as f64 * (cfg.gamma - 1.0);
        let n: Vec<f64> = (0..k).map(|v| acc_mu[oi][v] + cfg.gamma - 1.0).collect();
        for v in 0..k {
            model.mu[oi][v] = n[v] / d;
        }
        model.n_ov[oi] = n;
        model.d_o[oi] = d;
    }
    let alpha_excess: f64 = cfg.alpha.iter().map(|a| a - 1.0).sum();
    for (si, phi) in model.phi.iter_mut().enumerate() {
        let n_os = idx
            .objects_of_source(tdh_data::SourceId::from_index(si))
            .len() as f64;
        let denom = n_os + alpha_excess;
        for t in 0..3 {
            phi[t] = (acc_phi[si][t] + cfg.alpha[t] - 1.0) / denom;
        }
    }
    let beta_excess: f64 = cfg.beta.iter().map(|b| b - 1.0).sum();
    for (wi, psi) in model.psi.iter_mut().enumerate() {
        let n_ow = if wi < idx.n_workers() {
            idx.objects_of_worker(tdh_data::WorkerId::from_index(wi))
                .len() as f64
        } else {
            0.0
        };
        let denom = n_ow + beta_excess;
        for t in 0..3 {
            psi[t] = (acc_psi[wi][t] + cfg.beta[t] - 1.0) / denom;
        }
    }

    log_lik + log_prior
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::TruthDiscovery;
    use tdh_hierarchy::HierarchyBuilder;

    /// Two reliable sources, one generalizer, one adversary, over enough
    /// objects for the reliabilities to be identifiable.
    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..6 {
            for r in 0..4 {
                for city in 0..4 {
                    b.add_path(&[
                        &format!("C{c}"),
                        &format!("C{c}R{r}"),
                        &format!("C{c}R{r}T{city}"),
                    ]);
                }
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let generalizer = ds.intern_source("generalizer");
        let liar = ds.intern_source("liar");
        for i in 0..40 {
            let o = ds.intern_object(&format!("o{i}"));
            let c = i % 6;
            let r = i % 4;
            let city = i % 4;
            let h = ds.hierarchy();
            let truth = h.node_by_name(&format!("C{c}R{r}T{city}")).unwrap();
            let region = h.node_by_name(&format!("C{c}R{r}")).unwrap();
            let wrong = h
                .node_by_name(&format!("C{}R{}T{}", (c + 1) % 6, r, city))
                .unwrap();
            ds.set_gold(o, truth);
            ds.add_record(o, good1, truth);
            ds.add_record(o, good2, truth);
            ds.add_record(o, generalizer, region);
            ds.add_record(o, liar, wrong);
        }
        ds
    }

    #[test]
    fn em_recovers_truths_and_reliabilities() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        // All truths recovered exactly: the two reliable sources outvote
        // the generalizer + liar *because* the generalizer's claims support
        // the truth hierarchically.
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o), "object {o:?}");
        }
        // φ estimates reflect the construction.
        let phi_good = model.phi(tdh_data::SourceId(0));
        let phi_gen = model.phi(tdh_data::SourceId(2));
        let phi_liar = model.phi(tdh_data::SourceId(3));
        assert!(phi_good[0] > 0.8, "good source exact mass {phi_good:?}");
        assert!(
            phi_gen[1] > 0.6,
            "generalizer should carry its mass on φ2: {phi_gen:?}"
        );
        assert!(phi_liar[2] > 0.6, "liar wrong mass {phi_liar:?}");
    }

    #[test]
    fn objective_is_monotone_nondecreasing() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let trace = &model.fit_report().unwrap().trace;
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "EM objective decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn confidences_are_distributions() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        for mu in &est.confidences {
            if mu.is_empty() {
                continue;
            }
            let s: f64 = mu.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "μ sums to {s}");
            assert!(mu.iter().all(|&x| x > 0.0), "γ=2 keeps μ interior");
        }
    }

    #[test]
    fn cached_statistics_reproduce_mu() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        for (oi, mu) in model.mu.iter().enumerate() {
            for (v, &m) in mu.iter().enumerate() {
                let recon = model.n_ov[oi][v] / model.d_o[oi];
                assert!((m - recon).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn credible_workers_flip_a_contested_object() {
        // Object 0 is contested 1 vs 1 between two sources; five workers
        // first prove themselves on twenty anchor objects and then
        // unanimously back one side of the contest.
        let mut b = HierarchyBuilder::new();
        for c in 0..5 {
            for t in 0..5 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}R"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let mut node = |ds: &Dataset, c: usize, t: usize| {
            ds.hierarchy().node_by_name(&format!("C{c}T{t}")).unwrap()
        };
        // Contested object.
        let o0 = ds.intern_object("contested");
        let side_a = node(&ds, 0, 0);
        let side_b = node(&ds, 1, 1);
        ds.set_gold(o0, side_b);
        ds.add_record(o0, s1, side_a);
        ds.add_record(o0, s2, side_b);
        // Anchor objects: both sources agree (keeps them credible too).
        let mut anchors = Vec::new();
        for i in 0..20 {
            let o = ds.intern_object(&format!("anchor{i}"));
            let t = node(&ds, 2 + i % 3, i % 5);
            ds.set_gold(o, t);
            ds.add_record(o, s1, t);
            ds.add_record(o, s2, t);
            anchors.push((o, t));
        }
        // Five workers answer all anchors correctly, then back side B.
        for wi in 0..5 {
            let w = ds.intern_worker(&format!("w{wi}"));
            for &(o, t) in &anchors {
                ds.add_answer(o, w, t);
            }
            ds.add_answer(o0, w, side_b);
        }
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert_eq!(
            est.truths[o0.index()],
            Some(side_b),
            "five credible unanimous workers must break the 1v1 tie"
        );
        // The anchors are non-hierarchical objects, where Eq. (4) cannot
        // separate "exact" from "generalized" — so assert on the combined
        // correct mass ψ1 + ψ2 and on wrongness being low.
        let psi = model.psi(tdh_data::WorkerId(0));
        assert!(
            psi[0] + psi[1] > 0.8,
            "anchored worker correct mass = {}",
            psi[0] + psi[1]
        );
        assert!(psi[2] < 0.2, "anchored worker ψ3 = {}", psi[2]);
    }

    #[test]
    fn report_reflects_convergence() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            max_iters: 200,
            ..Default::default()
        });
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert!(rep.converged, "should converge well before 200 iters");
        assert!(rep.iterations < 200);
        assert_eq!(rep.trace.len(), rep.iterations);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::new(HierarchyBuilder::new().build());
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert!(est.truths.is_empty());
    }
}
