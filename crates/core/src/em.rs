//! The EM inference algorithm for the TDH model (§3.2 of the paper).
//!
//! Each iteration computes, in one pass over records and answers, the E-step
//! conditionals of Fig. 4 — the truth posteriors `f^v_{o,s}` / `f^v_{o,w}`
//! and the relationship-type posteriors `g^t_{o,s}` / `g^t_{o,w}` — and folds
//! them straight into the M-step accumulators of Eq. (9)–(11). The MAP
//! objective `F` (Eq. 8) is tracked for convergence.
//!
//! # Parallel execution
//!
//! One persistent [`crate::par::ThreadPool`] is created per fit and reused
//! across **all** EM iterations (no per-iteration thread spawns):
//!
//! * The **E-step** is independent across objects, so the pass is sharded
//!   over `0..n_objects`: each pool job scans a contiguous chunk of objects
//!   into a private [`EStepAcc`], and the driver merges the returned
//!   accumulators in fixed chunk order. The per-chunk buffers are pooled
//!   across iterations (zeroed, not reallocated). The Eq. (8) **log-prior**
//!   terms at the pre-update parameters ride in the same read-only batch as
//!   per-array partial sums (φ chunks, ψ chunks, μ chunks) merged in
//!   submission order.
//! * The **M-step** updates of `μ_o` (Eq. 9), `φ_s` (Eq. 10) and `ψ_w`
//!   (Eq. 11) are independent across objects, sources and workers
//!   respectively, so all three run as chunked pool jobs. Each entity's
//!   update reads only its own chunk accumulator (`μ`) or the merged
//!   accumulators and its incidence count (`φ`/`ψ`), so the M-step is
//!   bit-identical for *every* thread count; only the E-step merge and the
//!   log-prior partials regroup floating-point sums. The `μ` jobs write
//!   their disjoint object ranges into the shared state directly (a short
//!   write lock per chunk) and refresh the cached incremental-EM
//!   statistics through their results.
//!
//! The iteration state lives in a [`FitState`] behind an `RwLock` for the
//! duration of the fit: jobs take read locks (the `μ` update takes a write
//! lock for its disjoint range), the driver takes write locks strictly
//! between batches — the lock exists to let safe code share the state with
//! the long-lived workers. [`TdhConfig::n_threads`] controls the shard count;
//! `1` spawns nothing and reproduces the sequential accumulation order
//! bit-for-bit, and any shard count yields parameters equal up to
//! FP-summation regrouping (the facade's `parallel_equivalence` and
//! `pool_equivalence` suites assert 1e-9 agreement end-to-end, with
//! identical predicted truths on every tested corpus — an object whose top
//! two posteriors tie within that regrouping noise could in principle flip,
//! which the bench `scaling` scenario cross-checks and reports).

use std::mem;
use std::ops::Range;
use std::sync::RwLock;
use std::time::{Duration, Instant};

use tdh_data::{Dataset, ObservationIndex};

use crate::model::{prior_mean, TdhConfig, TdhModel, WarmStart};
use crate::par;

/// Diagnostics from one EM run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Number of EM iterations performed.
    pub iterations: usize,
    /// Final value of the MAP objective `F` (up to additive constants).
    /// `None` when no iteration ran (`max_iters = 0`) or the last iteration's
    /// objective was non-finite, so downstream consumers (bench JSON,
    /// convergence traces) never see `-inf`/NaN silently propagate.
    pub objective: Option<f64>,
    /// Whether the relative-improvement stopping rule fired before
    /// `max_iters`. Only ever fires on a non-descending step — a trace that
    /// is actively decreasing is a modeling/numerics problem, not
    /// convergence (check [`FitReport::monotone`] for dips earlier in the
    /// trace).
    pub converged: bool,
    /// Whether the objective trace never decreased beyond FP-noise slack
    /// (1e-9 relative). EM ascends the MAP objective, so `false` flags a
    /// numerics or configuration problem worth surfacing.
    pub monotone: bool,
    /// Objective value before each parameter update (one entry per
    /// iteration).
    pub trace: Vec<f64>,
}

/// Wall-clock time spent in each phase of the last fit, for the bench
/// harness's per-phase scaling reports.
///
/// Kept separate from [`FitReport`] on purpose: the report is part of the
/// deterministic fit contract (pooled repeats compare it bitwise), while
/// timings differ run to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time to build the [`ObservationIndex`]. Zero when the caller supplied
    /// a prebuilt index (`infer`) instead of going through `fit`.
    pub index_build: Duration,
    /// Total E-step time across iterations: chunk scans, the fixed-order
    /// merge and the objective assembly.
    pub e_step: Duration,
    /// Total M-step time across iterations: the `μ`/`φ`/`ψ` updates.
    pub m_step: Duration,
}

/// Clamp for logarithms of vanishing probabilities.
const LOG_FLOOR: f64 = 1e-300;

/// Relative slack under which an objective decrease is attributed to
/// floating-point noise rather than a genuinely descending trace.
pub(crate) const MONOTONE_SLACK: f64 = 1e-9;

/// The stopping rule of `run_em`, factored out so its edge cases are unit
/// testable: a step converges only when its magnitude is below `tol` *and*
/// it did not descend beyond [`MONOTONE_SLACK`] — a sequence of small
/// decreases (FP noise blown up by ablation configs) is not a fixed point.
/// A dip earlier in the trace is latched into `monotone` for the report but
/// does not forfeit a later genuine plateau (the renormalised E-step clamp
/// makes EM's ascent guarantee approximate, so a transient dip must not
/// force every remaining iteration).
pub(crate) struct ConvergenceMonitor {
    tol: f64,
    prev: Option<f64>,
    monotone: bool,
}

impl ConvergenceMonitor {
    pub(crate) fn new(tol: f64) -> Self {
        ConvergenceMonitor {
            tol,
            prev: None,
            monotone: true,
        }
    }

    /// `true` while no observed step decreased beyond the noise slack.
    pub(crate) fn monotone(&self) -> bool {
        self.monotone
    }

    /// Feed the next objective value; returns `true` when the run has
    /// converged.
    pub(crate) fn observe(&mut self, obj: f64) -> bool {
        let Some(prev) = self.prev.replace(obj) else {
            return false;
        };
        if !obj.is_finite() {
            // A collapse from a finite objective to -inf/NaN is the worst
            // possible descent, not a gap in the record.
            if prev.is_finite() {
                self.monotone = false;
            }
            return false;
        }
        if !prev.is_finite() {
            return false;
        }
        let scale = prev.abs().max(1.0);
        if obj < prev - MONOTONE_SLACK * scale {
            self.monotone = false;
            return false;
        }
        (obj - prev).abs() / scale < self.tol
    }
}

/// The per-fit iteration state shared between the driver and the pool
/// workers. Parameters move out of [`TdhModel`] into this struct for the
/// duration of a fit and back afterwards; workers read it under the lock
/// during jobs (the Eq. 9 `μ` jobs write their disjoint object ranges), the
/// driver writes it strictly between batches.
struct FitState {
    /// `φ_s = (exact, generalized, wrong)` per source.
    phi: Vec<[f64; 3]>,
    /// `ψ_w = (exact, generalized, wrong)` per worker.
    psi: Vec<[f64; 3]>,
    /// `μ_o` per object.
    mu: Vec<Vec<f64>>,
    /// Merged E-step `φ` accumulators (summed over chunks in chunk order).
    acc_phi: Vec<[f64; 3]>,
    /// Merged E-step `ψ` accumulators.
    acc_psi: Vec<[f64; 3]>,
}

/// A job for the per-fit worker pool.
enum EmJob {
    /// Scan the E-step conditionals for one chunk of objects into `acc`
    /// (a pooled buffer the job carries in and returns filled).
    EStep {
        /// The chunk's object range.
        range: Range<usize>,
        /// The chunk's reusable accumulator buffer.
        acc: EStepAcc,
    },
    /// Sum the `φ` log-prior terms of Eq. (8) for a chunk of sources at the
    /// pre-update parameters (runs in the same read-only batch as the
    /// E-step scans).
    LogPriorPhi(Range<usize>),
    /// The `ψ` log-prior terms for a chunk of workers.
    LogPriorPsi(Range<usize>),
    /// The `μ` log-prior terms for a chunk of objects.
    LogPriorMu(Range<usize>),
    /// The Eq. (9) `μ` update for one chunk of objects: transform the
    /// chunk's accumulator into the `N_{o,v}` numerators and write the new
    /// `μ` into the shared state (chunks own disjoint object ranges, so the
    /// writes never overlap and the result is bit-identical for every
    /// thread count).
    MStepMu {
        /// The chunk's object range (same chunking as its E-step job).
        range: Range<usize>,
        /// The chunk's accumulator from this iteration's E-step, returned
        /// through [`EmOut::MStepMu`] with `acc_mu` transformed into the
        /// Eq. (9) numerators.
        acc: EStepAcc,
    },
    /// Compute the Eq. (10) `φ` update for a chunk of sources.
    MStepPhi(Range<usize>),
    /// Compute the Eq. (11) `ψ` update for a chunk of workers.
    MStepPsi(Range<usize>),
}

/// The result of one [`EmJob`].
enum EmOut {
    /// The chunk's filled accumulator, handed back for reuse.
    EStep(EStepAcc),
    /// A partial log-prior sum (merged by the driver in submission order).
    LogPrior(f64),
    /// The `μ` update's outputs: the accumulator (its `acc_mu` now holding
    /// the Eq. (9) numerators `N_{o,v}`, which the driver copies into the
    /// model's incremental-EM cache before pooling the buffer) and the
    /// per-object denominators `D_o` for the chunk.
    MStepMu {
        /// The chunk's buffer, `acc_mu` transformed into `N_{o,v}`.
        acc: EStepAcc,
        /// `D_o` per object of the chunk.
        d_o: Vec<f64>,
    },
    /// Updated `φ` values for the job's source range.
    MStepPhi(Vec<[f64; 3]>),
    /// Updated `ψ` values for the job's worker range.
    MStepPsi(Vec<[f64; 3]>),
}

/// The single worker function every pool thread runs: interpret a job
/// against the shared fit state. Every job takes a read lock except
/// [`EmJob::MStepMu`], which computes its chunk outside the lock and takes
/// the write lock only to store its disjoint `μ` range.
fn em_worker(
    shared: &RwLock<FitState>,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    job: EmJob,
) -> EmOut {
    match job {
        EmJob::EStep { range, mut acc } => {
            let st = shared.read().expect("EM state lock poisoned");
            acc.reset(&st, &range);
            e_step_chunk(&st, idx, cfg, range, &mut acc);
            EmOut::EStep(acc)
        }
        EmJob::LogPriorPhi(range) => {
            let st = shared.read().expect("EM state lock poisoned");
            let mut sum = 0.0;
            for phi in &st.phi[range] {
                for t in 0..3 {
                    sum += (cfg.alpha[t] - 1.0) * phi[t].max(LOG_FLOOR).ln();
                }
            }
            EmOut::LogPrior(sum)
        }
        EmJob::LogPriorPsi(range) => {
            let st = shared.read().expect("EM state lock poisoned");
            let mut sum = 0.0;
            for psi in &st.psi[range] {
                for t in 0..3 {
                    sum += (cfg.beta[t] - 1.0) * psi[t].max(LOG_FLOOR).ln();
                }
            }
            EmOut::LogPrior(sum)
        }
        EmJob::LogPriorMu(range) => {
            let st = shared.read().expect("EM state lock poisoned");
            let mut sum = 0.0;
            for mu in &st.mu[range] {
                for &m in mu {
                    sum += (cfg.gamma - 1.0) * m.max(LOG_FLOOR).ln();
                }
            }
            EmOut::LogPrior(sum)
        }
        EmJob::MStepMu { range, mut acc } => {
            // Eq. (9): per-object, independent of chunking. The numerators
            // are computed in place (no lock needed — the accumulator is
            // job-private), then the chunk's μ range is written back under
            // a short write lock.
            let mut d_o = Vec::with_capacity(range.len());
            for (rel, oi) in range.clone().enumerate() {
                let view = &idx.views()[oi];
                let k = view.n_candidates();
                if k == 0 {
                    d_o.push(0.0);
                    continue;
                }
                let evidence = (view.sources.len() + view.workers.len()) as f64;
                d_o.push(evidence + k as f64 * (cfg.gamma - 1.0));
                for n in &mut acc.acc_mu[rel] {
                    *n += cfg.gamma - 1.0;
                }
            }
            {
                let mut st = shared.write().expect("EM state lock poisoned");
                for (rel, oi) in range.clone().enumerate() {
                    let d = d_o[rel];
                    if d == 0.0 {
                        continue;
                    }
                    for (slot, n) in st.mu[oi].iter_mut().zip(&acc.acc_mu[rel]) {
                        *slot = n / d;
                    }
                }
            }
            EmOut::MStepMu { acc, d_o }
        }
        EmJob::MStepPhi(range) => {
            let st = shared.read().expect("EM state lock poisoned");
            EmOut::MStepPhi(m_step_phi_chunk(&st, idx, cfg, range))
        }
        EmJob::MStepPsi(range) => {
            let st = shared.read().expect("EM state lock poisoned");
            EmOut::MStepPsi(m_step_psi_chunk(&st, idx, cfg, range))
        }
    }
}

pub(crate) fn run_em(
    model: &mut TdhModel,
    ds: &Dataset,
    idx: &ObservationIndex,
    warm: Option<&WarmStart>,
) -> FitReport {
    let cfg = *model.config();
    let n_threads = par::effective_threads(cfg.n_threads);
    initialize(model, ds, idx, &cfg, warm);

    let shared = RwLock::new(FitState {
        phi: mem::take(&mut model.phi),
        psi: mem::take(&mut model.psi),
        mu: mem::take(&mut model.mu),
        acc_phi: Vec::new(),
        acc_psi: Vec::new(),
    });
    let worker = |job: EmJob| em_worker(&shared, idx, &cfg, job);
    let (report, timings) = par::with_pool(n_threads, &worker, |pool| {
        em_loop(model, idx, &cfg, &shared, pool)
    });
    let state = shared.into_inner().expect("EM state lock poisoned");
    model.phi = state.phi;
    model.psi = state.psi;
    model.mu = state.mu;
    model.last_timings = Some(timings);
    report
}

/// The EM driver, run inside the fit's pool scope: iterate E+M batches on
/// the persistent workers until convergence.
fn em_loop(
    model: &mut TdhModel,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    shared: &RwLock<FitState>,
    pool: &par::ThreadPool<'_, EmJob, EmOut>,
) -> (FitReport, PhaseTimings) {
    let n_threads = pool.n_threads();
    // Chunk boundaries are fixed for the whole fit — they depend only on
    // (n, n_threads) — so the accumulator pool below can be reused by chunk
    // position and the FP merge grouping is identical every iteration.
    let e_ranges = par::chunk_ranges(idx.n_objects(), n_threads);
    let (n_src, n_wrk) = {
        let st = shared.read().expect("EM state lock poisoned");
        (st.phi.len(), st.psi.len())
    };
    let phi_ranges = par::chunk_ranges(n_src, n_threads);
    let psi_ranges = par::chunk_ranges(n_wrk, n_threads);
    {
        let mut st = shared.write().expect("EM state lock poisoned");
        st.acc_phi = vec![[0.0f64; 3]; n_src];
        st.acc_psi = vec![[0.0f64; 3]; n_wrk];
    }
    // One accumulator buffer per E-step chunk, allocated once per fit and
    // recycled through the jobs every iteration.
    let mut acc_pool: Vec<EStepAcc> = e_ranges.iter().map(|_| EStepAcc::empty()).collect();

    let mut timings = PhaseTimings::default();
    let mut trace = Vec::new();
    let mut monitor = ConvergenceMonitor::new(cfg.tol);
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        let obj = em_iteration(
            model,
            shared,
            pool,
            &e_ranges,
            &phi_ranges,
            &psi_ranges,
            &mut acc_pool,
            &mut timings,
        );
        trace.push(obj);
        if monitor.observe(obj) {
            converged = true;
            break;
        }
    }

    let report = FitReport {
        iterations,
        objective: trace.last().copied().filter(|o| o.is_finite()),
        converged,
        monotone: monitor.monotone(),
        trace,
    };
    (report, timings)
}

/// Initial parameters: priors' means for `φ`/`ψ`, claim-frequency smoothing
/// for `μ` (a vote-shaped start converges in a handful of iterations and is
/// deterministic). When `warm` is given, the cold values are overwritten
/// with the previous fit's parameters wherever they apply: `φ`/`ψ` by dense
/// id prefix (ids are append-only), `μ` by candidate *value* — an object
/// whose candidate set grew keeps its learned mass on the old candidates,
/// the inserted ones keep their vote-prior weight, and the row is
/// renormalized. Objects whose candidate sets are unchanged take the warm
/// distribution bit-for-bit (no renormalization), so a warm start on
/// unchanged data resumes exactly at the previous fixed point.
fn initialize(
    model: &mut TdhModel,
    ds: &Dataset,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    warm: Option<&WarmStart>,
) {
    model.phi = vec![prior_mean(&cfg.alpha); ds.n_sources()];
    let n_workers = ds.n_workers().max(idx.n_workers());
    model.psi = vec![prior_mean(&cfg.beta); n_workers];
    model.mu = idx
        .views()
        .iter()
        .map(|view| {
            let k = view.n_candidates();
            if k == 0 {
                return Vec::new();
            }
            let total: f64 = (0..k)
                .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 1.0)
                .sum();
            (0..k)
                .map(|v| (f64::from(view.source_count[v] + view.worker_count[v]) + 1.0) / total)
                .collect()
        })
        .collect();
    model.n_ov = vec![Vec::new(); idx.n_objects()];
    model.d_o = vec![0.0; idx.n_objects()];

    let Some(warm) = warm else { return };
    for (slot, prev) in model.phi.iter_mut().zip(&warm.phi) {
        *slot = *prev;
    }
    for (slot, prev) in model.psi.iter_mut().zip(&warm.psi) {
        *slot = *prev;
    }
    for (oi, prev) in warm.mu.iter().enumerate().take(model.mu.len()) {
        let view = &idx.views()[oi];
        let mu = &mut model.mu[oi];
        let mut missing = 0usize;
        for (v, slot) in view.candidates.iter().zip(mu.iter_mut()) {
            match prev.binary_search_by(|&(c, _)| c.cmp(v)) {
                Ok(p) => *slot = prev[p].1,
                Err(_) => missing += 1,
            }
        }
        // A grown candidate set mixes warm mass with vote-prior weight for
        // the new entries; renormalize to keep μ a distribution. When every
        // candidate was found the row *is* the previous distribution —
        // leave its bits alone.
        if missing > 0 && missing < mu.len() {
            let z: f64 = mu.iter().sum();
            if z > 0.0 {
                for x in mu.iter_mut() {
                    *x /= z;
                }
            }
        }
    }
}

/// The relationship-type posterior `(g^1, g^2, g^3)` of Fig. 4 from the
/// unnormalised exact/generalized masses `n1`, `n2` and the total evidence
/// `z > 0`.
///
/// The residual `z - n1 - n2` can undershoot zero when `n2` overshoots
/// `z - n1` (hierarchy-aware `n2` sums descendant terms that are not a subset
/// of `z`'s decomposition), so the triple is clamped and renormalised to keep
/// it a distribution before it enters the `φ`/`ψ` accumulators.
pub(crate) fn relationship_posterior(n1: f64, n2: f64, z: f64) -> [f64; 3] {
    debug_assert!(z > 0.0, "caller filters non-positive evidence");
    let g1 = (n1 / z).max(0.0);
    let g2 = (n2 / z).max(0.0);
    let g3 = ((z - n1 - n2) / z).max(0.0);
    let s = g1 + g2 + g3;
    if s > 0.0 {
        [g1 / s, g2 / s, g3 / s]
    } else {
        // Unreachable for finite inputs with z > 0 (g3 = 1 when n1 = n2 = 0),
        // but keep the output a distribution even then.
        [1.0 / 3.0; 3]
    }
}

/// Private E-step accumulators for one contiguous chunk of objects.
///
/// `acc_mu` is indexed relative to the chunk start (each object belongs to
/// exactly one chunk); `acc_phi`/`acc_psi`/`log_lik` span all sources and
/// workers and are summed across chunks in fixed chunk order. Buffers are
/// pooled per chunk across iterations — [`EStepAcc::reset`] zero-fills in
/// place, reusing capacity, since chunk shapes never change within a fit.
struct EStepAcc {
    acc_mu: Vec<Vec<f64>>,
    acc_phi: Vec<[f64; 3]>,
    acc_psi: Vec<[f64; 3]>,
    log_lik: f64,
}

impl EStepAcc {
    /// A shape-less buffer; the first [`EStepAcc::reset`] sizes it.
    fn empty() -> Self {
        EStepAcc {
            acc_mu: Vec::new(),
            acc_phi: Vec::new(),
            acc_psi: Vec::new(),
            log_lik: 0.0,
        }
    }

    /// Zero the buffer for a fresh scan of `range`, reusing allocations.
    fn reset(&mut self, st: &FitState, range: &Range<usize>) {
        self.acc_mu.resize(range.len(), Vec::new());
        for (slot, mu) in self.acc_mu.iter_mut().zip(&st.mu[range.clone()]) {
            slot.clear();
            slot.resize(mu.len(), 0.0);
        }
        self.acc_phi.clear();
        self.acc_phi.resize(st.phi.len(), [0.0f64; 3]);
        self.acc_psi.clear();
        self.acc_psi.resize(st.psi.len(), [0.0f64; 3]);
        self.log_lik = 0.0;
    }
}

/// Scan the E-step conditionals of Fig. 4 for `objects` into `acc` (already
/// reset), reading the previous iteration's parameters from `st`.
fn e_step_chunk(
    st: &FitState,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    objects: Range<usize>,
    acc: &mut EStepAcc,
) {
    let base = objects.start;
    let mut posterior = Vec::new();
    for oi in objects {
        let view = &idx.views()[oi];
        let k = view.n_candidates();
        if k == 0 {
            continue;
        }
        let mu = &st.mu[oi];

        // --- Records ---
        for &(s, c) in &view.sources {
            let phi = &st.phi[s.index()];
            posterior.clear();
            let mut z = 0.0;
            for t in 0..k as u32 {
                let p =
                    TdhModel::source_likelihood_cfg(view, phi, c, t, cfg.ablation) * mu[t as usize];
                posterior.push(p);
                z += p;
            }
            if z <= 0.0 {
                continue;
            }
            acc.log_lik += z.max(LOG_FLOOR).ln();
            for (t, p) in posterior.iter().enumerate() {
                acc.acc_mu[oi - base][t] += p / z;
            }
            // g^1: the claim was the exact truth.
            let n1 = phi[0] * mu[c as usize];
            // g^2: the claim was a generalization of the truth — the truth
            // is then one of the claim's candidate descendants (Fig. 4).
            let n2 = if view.in_oh && cfg.ablation.hierarchy_aware {
                view.descendants[c as usize]
                    .iter()
                    .map(|&v| phi[1] / view.ancestors[v as usize].len() as f64 * mu[v as usize])
                    .sum::<f64>()
            } else {
                phi[1] * mu[c as usize]
            };
            let g = relationship_posterior(n1, n2, z);
            let a = &mut acc.acc_phi[s.index()];
            for t in 0..3 {
                a[t] += g[t];
            }
        }

        // --- Answers ---
        for &(w, c) in &view.workers {
            let psi = st.psi[w.index()];
            posterior.clear();
            let mut z = 0.0;
            for t in 0..k as u32 {
                let p = TdhModel::worker_likelihood_cfg(view, &psi, c, t, cfg.ablation)
                    * mu[t as usize];
                posterior.push(p);
                z += p;
            }
            if z <= 0.0 {
                continue;
            }
            acc.log_lik += z.max(LOG_FLOOR).ln();
            for (t, p) in posterior.iter().enumerate() {
                acc.acc_mu[oi - base][t] += p / z;
            }
            let n1 = psi[0] * mu[c as usize];
            let n2 = if view.in_oh && cfg.ablation.hierarchy_aware {
                view.descendants[c as usize]
                    .iter()
                    .map(|&v| {
                        TdhModel::worker_likelihood_cfg(view, &psi, c, v, cfg.ablation)
                            * mu[v as usize]
                    })
                    .sum::<f64>()
            } else {
                psi[1] * mu[c as usize]
            };
            let g = relationship_posterior(n1, n2, z);
            let a = &mut acc.acc_psi[w.index()];
            for t in 0..3 {
                a[t] += g[t];
            }
        }
    }
}

/// Eq. (10) for a chunk of sources: each `φ_s` depends only on the merged
/// accumulators and `|O_s|`, so the update is bit-identical regardless of
/// how sources are chunked.
fn m_step_phi_chunk(
    st: &FitState,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    sources: Range<usize>,
) -> Vec<[f64; 3]> {
    let alpha_excess: f64 = cfg.alpha.iter().map(|a| a - 1.0).sum();
    sources
        .map(|si| {
            let n_os = idx
                .objects_of_source(tdh_data::SourceId::from_index(si))
                .len() as f64;
            let denom = n_os + alpha_excess;
            let mut phi = [0.0f64; 3];
            for t in 0..3 {
                phi[t] = (st.acc_phi[si][t] + cfg.alpha[t] - 1.0) / denom;
            }
            phi
        })
        .collect()
}

/// Eq. (11) for a chunk of workers; mirrors [`m_step_phi_chunk`].
fn m_step_psi_chunk(
    st: &FitState,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    workers: Range<usize>,
) -> Vec<[f64; 3]> {
    let beta_excess: f64 = cfg.beta.iter().map(|b| b - 1.0).sum();
    workers
        .map(|wi| {
            let n_ow = if wi < idx.n_workers() {
                idx.objects_of_worker(tdh_data::WorkerId::from_index(wi))
                    .len() as f64
            } else {
                0.0
            };
            let denom = n_ow + beta_excess;
            let mut psi = [0.0f64; 3];
            for t in 0..3 {
                psi[t] = (st.acc_psi[wi][t] + cfg.beta[t] - 1.0) / denom;
            }
            psi
        })
        .collect()
}

/// One E+M pass on the fit's persistent pool. Returns the MAP objective
/// evaluated at the *pre-update* parameters (the quantity EM is guaranteed
/// not to decrease).
#[allow(clippy::too_many_arguments)]
fn em_iteration(
    model: &mut TdhModel,
    shared: &RwLock<FitState>,
    pool: &par::ThreadPool<'_, EmJob, EmOut>,
    e_ranges: &[Range<usize>],
    phi_ranges: &[Range<usize>],
    psi_ranges: &[Range<usize>],
    acc_pool: &mut Vec<EStepAcc>,
    timings: &mut PhaseTimings,
) -> f64 {
    // --- E-step + objective: one read-only batch. The per-chunk E-step
    // scans are merged in fixed chunk order so the result is deterministic
    // for a given thread count (and bit-identical to the sequential pass
    // when there is a single chunk); the Eq. (8) log-prior terms at the
    // pre-update parameters ride in the same batch as per-array partial
    // sums, merged in submission order (φ chunks, ψ chunks, μ chunks).
    let t0 = Instant::now();
    let jobs: Vec<EmJob> = e_ranges
        .iter()
        .zip(acc_pool.drain(..))
        .map(|(range, acc)| EmJob::EStep {
            range: range.clone(),
            acc,
        })
        .chain(phi_ranges.iter().map(|r| EmJob::LogPriorPhi(r.clone())))
        .chain(psi_ranges.iter().map(|r| EmJob::LogPriorPsi(r.clone())))
        .chain(e_ranges.iter().map(|r| EmJob::LogPriorMu(r.clone())))
        .collect();
    let outs = pool
        .run_batch(jobs)
        .unwrap_or_else(|e| panic!("E-step pool failed: {e}"));
    let mut log_prior = 0.0f64;
    let mut e_accs: Vec<EStepAcc> = Vec::with_capacity(e_ranges.len());
    for out in outs {
        match out {
            EmOut::EStep(acc) => e_accs.push(acc),
            EmOut::LogPrior(partial) => log_prior += partial,
            _ => unreachable!("the E-step batch holds only scans and log-priors"),
        }
    }

    let obj = {
        let mut st = shared.write().expect("EM state lock poisoned");
        let st = &mut *st;
        for a in st.acc_phi.iter_mut() {
            *a = [0.0f64; 3];
        }
        for a in st.acc_psi.iter_mut() {
            *a = [0.0f64; 3];
        }
        let mut log_lik = 0.0f64;
        for chunk in &e_accs {
            for (total, part) in st.acc_phi.iter_mut().zip(&chunk.acc_phi) {
                for t in 0..3 {
                    total[t] += part[t];
                }
            }
            for (total, part) in st.acc_psi.iter_mut().zip(&chunk.acc_psi) {
                for t in 0..3 {
                    total[t] += part[t];
                }
            }
            log_lik += chunk.log_lik;
        }
        log_lik + log_prior
    };
    timings.e_step += t0.elapsed();

    // --- M-step: Eq. (9)/(10)/(11) all as pool jobs. The μ jobs reuse the
    // chunk accumulators (transforming them into the Eq. 9 numerators) and
    // write their disjoint μ ranges directly; the φ/ψ jobs read only the
    // merged accumulators, so every update is bit-identical regardless of
    // how entities are chunked. ---
    let t1 = Instant::now();
    let m_jobs: Vec<EmJob> = e_ranges
        .iter()
        .zip(e_accs)
        .map(|(range, acc)| EmJob::MStepMu {
            range: range.clone(),
            acc,
        })
        .chain(phi_ranges.iter().map(|r| EmJob::MStepPhi(r.clone())))
        .chain(psi_ranges.iter().map(|r| EmJob::MStepPsi(r.clone())))
        .collect();
    let m_outs = pool
        .run_batch(m_jobs)
        .unwrap_or_else(|e| panic!("M-step pool failed: {e}"));
    {
        let mut st = shared.write().expect("EM state lock poisoned");
        let mut outs = m_outs.into_iter();
        for range in e_ranges {
            match outs.next() {
                Some(EmOut::MStepMu { acc, d_o }) => {
                    // Refresh the incremental-EM cache from the chunk's
                    // outputs, then pool the buffer for the next iteration
                    // (order preserved: results arrive in submission order,
                    // so slot i stays chunk i's buffer).
                    for (rel, oi) in range.clone().enumerate() {
                        if d_o[rel] == 0.0 {
                            continue;
                        }
                        let n_ov = &mut model.n_ov[oi];
                        n_ov.clear();
                        n_ov.extend_from_slice(&acc.acc_mu[rel]);
                        model.d_o[oi] = d_o[rel];
                    }
                    acc_pool.push(acc);
                }
                _ => unreachable!("μ jobs open the M-step batch"),
            }
        }
        for range in phi_ranges {
            match outs.next() {
                Some(EmOut::MStepPhi(vals)) => st.phi[range.clone()].copy_from_slice(&vals),
                _ => unreachable!("φ jobs follow the μ jobs"),
            }
        }
        for range in psi_ranges {
            match outs.next() {
                Some(EmOut::MStepPsi(vals)) => st.psi[range.clone()].copy_from_slice(&vals),
                _ => unreachable!("ψ jobs close the M-step batch"),
            }
        }
    }
    timings.m_step += t1.elapsed();

    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tdh_hierarchy::HierarchyBuilder;

    /// Two reliable sources, one generalizer, one adversary, over enough
    /// objects for the reliabilities to be identifiable.
    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..6 {
            for r in 0..4 {
                for city in 0..4 {
                    b.add_path(&[
                        &format!("C{c}"),
                        &format!("C{c}R{r}"),
                        &format!("C{c}R{r}T{city}"),
                    ]);
                }
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let generalizer = ds.intern_source("generalizer");
        let liar = ds.intern_source("liar");
        for i in 0..40 {
            let o = ds.intern_object(&format!("o{i}"));
            let c = i % 6;
            let r = i % 4;
            let city = i % 4;
            let h = ds.hierarchy();
            let truth = h.node_by_name(&format!("C{c}R{r}T{city}")).unwrap();
            let region = h.node_by_name(&format!("C{c}R{r}")).unwrap();
            let wrong = h
                .node_by_name(&format!("C{}R{}T{}", (c + 1) % 6, r, city))
                .unwrap();
            ds.set_gold(o, truth);
            ds.add_record(o, good1, truth);
            ds.add_record(o, good2, truth);
            ds.add_record(o, generalizer, region);
            ds.add_record(o, liar, wrong);
        }
        ds
    }

    fn config_with_threads(n_threads: usize) -> TdhConfig {
        TdhConfig {
            n_threads,
            ..Default::default()
        }
    }

    #[test]
    fn em_recovers_truths_and_reliabilities() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        // All truths recovered exactly: the two reliable sources outvote
        // the generalizer + liar *because* the generalizer's claims support
        // the truth hierarchically.
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o), "object {o:?}");
        }
        // φ estimates reflect the construction.
        let phi_good = model.phi(tdh_data::SourceId(0));
        let phi_gen = model.phi(tdh_data::SourceId(2));
        let phi_liar = model.phi(tdh_data::SourceId(3));
        assert!(phi_good[0] > 0.8, "good source exact mass {phi_good:?}");
        assert!(
            phi_gen[1] > 0.6,
            "generalizer should carry its mass on φ2: {phi_gen:?}"
        );
        assert!(phi_liar[2] > 0.6, "liar wrong mass {phi_liar:?}");
    }

    #[test]
    fn objective_is_monotone_nondecreasing() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert!(rep.monotone, "monitor should agree the trace ascended");
        let trace = &rep.trace;
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "EM objective decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn confidences_are_distributions() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        for mu in &est.confidences {
            if mu.is_empty() {
                continue;
            }
            let s: f64 = mu.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "μ sums to {s}");
            assert!(mu.iter().all(|&x| x > 0.0), "γ=2 keeps μ interior");
        }
    }

    #[test]
    fn cached_statistics_reproduce_mu() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        for (oi, mu) in model.mu.iter().enumerate() {
            for (v, &m) in mu.iter().enumerate() {
                let recon = model.n_ov[oi][v] / model.d_o[oi];
                assert!((m - recon).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn credible_workers_flip_a_contested_object() {
        // Object 0 is contested 1 vs 1 between two sources; five workers
        // first prove themselves on twenty anchor objects and then
        // unanimously back one side of the contest.
        let mut b = HierarchyBuilder::new();
        for c in 0..5 {
            for t in 0..5 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}R"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let node = |ds: &Dataset, c: usize, t: usize| {
            ds.hierarchy().node_by_name(&format!("C{c}T{t}")).unwrap()
        };
        // Contested object.
        let o0 = ds.intern_object("contested");
        let side_a = node(&ds, 0, 0);
        let side_b = node(&ds, 1, 1);
        ds.set_gold(o0, side_b);
        ds.add_record(o0, s1, side_a);
        ds.add_record(o0, s2, side_b);
        // Anchor objects: both sources agree (keeps them credible too).
        let mut anchors = Vec::new();
        for i in 0..20 {
            let o = ds.intern_object(&format!("anchor{i}"));
            let t = node(&ds, 2 + i % 3, i % 5);
            ds.set_gold(o, t);
            ds.add_record(o, s1, t);
            ds.add_record(o, s2, t);
            anchors.push((o, t));
        }
        // Five workers answer all anchors correctly, then back side B.
        for wi in 0..5 {
            let w = ds.intern_worker(&format!("w{wi}"));
            for &(o, t) in &anchors {
                ds.add_answer(o, w, t);
            }
            ds.add_answer(o0, w, side_b);
        }
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert_eq!(
            est.truths[o0.index()],
            Some(side_b),
            "five credible unanimous workers must break the 1v1 tie"
        );
        // The anchors are non-hierarchical objects, where Eq. (4) cannot
        // separate "exact" from "generalized" — so assert on the combined
        // correct mass ψ1 + ψ2 and on wrongness being low.
        let psi = model.psi(tdh_data::WorkerId(0));
        assert!(
            psi[0] + psi[1] > 0.8,
            "anchored worker correct mass = {}",
            psi[0] + psi[1]
        );
        assert!(psi[2] < 0.2, "anchored worker ψ3 = {}", psi[2]);
    }

    #[test]
    fn report_reflects_convergence() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            max_iters: 200,
            ..Default::default()
        });
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert!(rep.converged, "should converge well before 200 iters");
        assert!(rep.iterations < 200);
        assert_eq!(rep.trace.len(), rep.iterations);
        assert_eq!(rep.objective, rep.trace.last().copied());
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::new(HierarchyBuilder::new().build());
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert!(est.truths.is_empty());
        // No evidence and no parameters: the objective is the empty sum, a
        // well-defined 0.0 — not -inf.
        let rep = model.fit_report().unwrap();
        assert_eq!(rep.objective, Some(0.0));
        assert!(rep.monotone);
    }

    #[test]
    fn empty_dataset_on_a_multi_thread_pool_is_fine() {
        // Regression for the n == 0 contract: a degenerate fit must not
        // panic or deadlock just because a pool was requested — every phase
        // submits zero chunks.
        for n_threads in [2, 4, 9] {
            let ds = Dataset::new(HierarchyBuilder::new().build());
            let mut model = TdhModel::new(config_with_threads(n_threads));
            let est = model.fit(&ds);
            assert!(est.truths.is_empty());
            let rep = model.fit_report().unwrap();
            assert_eq!(rep.objective, Some(0.0), "{n_threads} threads");
        }
    }

    #[test]
    fn fit_records_phase_timings() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let t = model.phase_timings().expect("fit records timings");
        assert!(t.e_step > Duration::ZERO, "E-step time accumulates");
        // infer() with a prebuilt index reports no build time.
        let idx = ObservationIndex::build(&ds);
        let mut model2 = TdhModel::new(TdhConfig::default());
        use crate::traits::TruthDiscovery;
        model2.infer(&ds, &idx);
        let t2 = model2.phase_timings().unwrap();
        assert_eq!(t2.index_build, Duration::ZERO);
    }

    #[test]
    fn zero_iterations_reports_no_objective() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            max_iters: 0,
            ..Default::default()
        });
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert_eq!(rep.iterations, 0);
        assert_eq!(rep.objective, None, "no iteration ran, no objective");
        assert!(!rep.converged);
        assert!(rep.monotone, "an empty trace vacuously ascended");
        assert!(rep.trace.is_empty());
    }

    #[test]
    fn all_empty_views_report_prior_only_objective() {
        // Objects exist but nothing was ever claimed: every view has k = 0.
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        let mut ds = Dataset::new(b.build());
        ds.intern_object("o0");
        ds.intern_object("o1");
        ds.intern_source("idle");
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert_eq!(est.truths, vec![None, None]);
        let rep = model.fit_report().unwrap();
        // The likelihood term is empty; the objective is the (finite)
        // log-prior of the initialized source parameters.
        let obj = rep.objective.expect("prior-only objective is finite");
        assert!(obj.is_finite());
        assert!(rep.converged, "a constant trace converges immediately");
    }

    #[test]
    fn strictly_decreasing_trace_never_converges() {
        // Each relative step is far below tol, so the old |Δ|-only rule
        // would have declared convergence at the second observation.
        let mut m = ConvergenceMonitor::new(1e-3);
        let mut obj = -100.0;
        for _ in 0..50 {
            assert!(!m.observe(obj), "descending trace must not converge");
            obj -= 1e-5 * obj.abs();
        }
        assert!(!m.monotone(), "the descent must be surfaced");
    }

    #[test]
    fn convergence_monitor_accepts_ascending_fixed_point() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-100.0));
        assert!(!m.observe(-50.0));
        assert!(!m.observe(-49.999));
        assert!(m.observe(-49.999 + 1e-9), "tiny ascent below tol converges");
        assert!(m.monotone());
    }

    #[test]
    fn transient_dip_surfaces_but_does_not_forfeit_a_later_plateau() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-100.0));
        assert!(!m.observe(-50.0));
        // A dip beyond slack: never a convergence step, latched in the
        // report...
        assert!(!m.observe(-50.001));
        assert!(!m.monotone());
        // ...but a later genuine plateau still stops the run instead of
        // burning every remaining iteration.
        assert!(!m.observe(-49.9));
        assert!(m.observe(-49.9));
        assert!(!m.monotone(), "the dip stays surfaced");
    }

    #[test]
    fn objective_collapse_is_not_monotone() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-10.0));
        assert!(!m.observe(f64::NEG_INFINITY));
        assert!(!m.monotone(), "finite → -inf is the worst descent");
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-10.0));
        assert!(!m.observe(f64::NAN));
        assert!(!m.monotone());
        // Starting non-finite carries no ordering information.
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(f64::NEG_INFINITY));
        assert!(!m.observe(-10.0));
        assert!(m.monotone());
    }

    #[test]
    fn convergence_monitor_tolerates_fp_noise_dips() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(1e6));
        // A dip within MONOTONE_SLACK relative is FP noise, not a descent.
        assert!(m.observe(1e6 - 1e-4));
        assert!(m.monotone());
    }

    #[test]
    fn sharded_fit_matches_sequential() {
        let ds = corpus();
        let mut seq = TdhModel::new(config_with_threads(1));
        let mut par3 = TdhModel::new(config_with_threads(3));
        let est_seq = seq.fit(&ds);
        let est_par = par3.fit(&ds);
        assert_eq!(est_seq.truths, est_par.truths);
        for (a, b) in seq.phi.iter().zip(&par3.phi) {
            for t in 0..3 {
                assert!((a[t] - b[t]).abs() < 1e-9, "φ diverged: {a:?} vs {b:?}");
            }
        }
        for (a, b) in seq.mu.iter().zip(&par3.mu) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "μ diverged: {x} vs {y}");
            }
        }
        let (ra, rb) = (seq.fit_report().unwrap(), par3.fit_report().unwrap());
        assert_eq!(ra.iterations, rb.iterations);
        let (oa, ob) = (ra.objective.unwrap(), rb.objective.unwrap());
        assert!((oa - ob).abs() / oa.abs().max(1.0) < 1e-9);
    }

    #[test]
    fn sharded_fit_is_deterministic_across_repeats() {
        let ds = corpus();
        let run = || {
            let mut model = TdhModel::new(config_with_threads(4));
            let est = model.fit(&ds);
            (est, model.fit_report().unwrap().clone())
        };
        let (est1, rep1) = run();
        let (est2, rep2) = run();
        // Bitwise equality, not tolerance: fixed chunk boundaries and a
        // fixed merge order leave no room for scheduling nondeterminism.
        assert_eq!(est1, est2);
        assert_eq!(rep1, rep2);
    }

    #[test]
    fn warm_refit_converges_in_fewer_iterations() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let cold_iters = model.fit_report().unwrap().iterations;
        assert!(cold_iters > 2, "corpus should take a few cold iterations");
        // Same model, same data: the refit resumes at the fixed point and
        // the plateau detector fires almost immediately.
        let warm_est = model.fit(&ds);
        let warm_iters = model.fit_report().unwrap().iterations;
        assert!(
            warm_iters < cold_iters,
            "warm refit took {warm_iters} iterations vs {cold_iters} cold"
        );
        for o in ds.objects() {
            assert_eq!(warm_est.truths[o.index()], ds.gold(o), "object {o:?}");
        }
    }

    #[test]
    fn warm_start_disabled_repeats_the_cold_fit_bitwise() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            warm_start: false,
            ..Default::default()
        });
        let est1 = model.fit(&ds);
        let rep1 = model.fit_report().unwrap().clone();
        let est2 = model.fit(&ds);
        let rep2 = model.fit_report().unwrap().clone();
        assert_eq!(est1, est2, "cold refits must be history-free");
        assert_eq!(rep1, rep2);
    }

    #[test]
    fn warm_start_maps_grown_candidate_sets_by_value() {
        // Fit, then let a new source claim a brand-new candidate for every
        // object: the warm μ must survive the candidate-index shift.
        let mut ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let idx = ObservationIndex::build(&ds);
        let warm = model.warm_start_params(&idx).expect("fitted");
        let newcomer = ds.intern_source("newcomer");
        let objects: Vec<_> = ds.objects().collect();
        for (i, o) in objects.iter().enumerate() {
            let v = ds
                .hierarchy()
                .node_by_name(&format!("C{}R{}T{}", (i + 2) % 6, i % 4, (i + 1) % 4))
                .unwrap();
            ds.add_record(*o, newcomer, v);
        }
        let est = model.fit_from(&ds, &warm);
        let rep = model.fit_report().unwrap();
        assert!(rep.converged, "warm refit over grown candidates converges");
        // Two good sources + hierarchy support still beat one new claim.
        let mut correct = 0;
        for o in ds.objects() {
            if est.truths[o.index()] == ds.gold(o) {
                correct += 1;
            }
        }
        assert!(correct >= 38, "truths survive the batch: {correct}/40");
    }

    #[test]
    fn unfitted_model_exports_no_warm_start() {
        let ds = corpus();
        let idx = ObservationIndex::build(&ds);
        let model = TdhModel::new(TdhConfig::default());
        assert!(model.warm_start_params(&idx).is_none());
    }

    #[test]
    fn restored_model_reproduces_cached_statistics() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let idx = ObservationIndex::build(&ds);
        let restored = TdhModel::restore(
            *model.config(),
            &idx,
            model.phi_table().to_vec(),
            model.psi_table().to_vec(),
            model.mu_table().to_vec(),
        );
        assert_eq!(restored.phi_table(), model.phi_table());
        assert_eq!(restored.mu_table(), model.mu_table());
        // The rebuilt N_{o,v}/D_o agree with the fit's cache (μ = N/D holds
        // exactly on both sides).
        for (oi, mu) in restored.mu.iter().enumerate() {
            assert_eq!(restored.d_o[oi], model.d_o[oi], "D_o[{oi}]");
            for (v, &m) in mu.iter().enumerate() {
                let recon = restored.n_ov[oi][v] / restored.d_o[oi];
                assert!((m - recon).abs() < 1e-12);
            }
        }
    }

    proptest! {
        #[test]
        fn relationship_posterior_is_a_distribution(
            n1 in 0.0f64..10.0,
            n2 in 0.0f64..10.0,
            z in 1e-12f64..10.0,
        ) {
            let g = relationship_posterior(n1, n2, z);
            let s: f64 = g.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-12, "g sums to {}", s);
            for x in g {
                prop_assert!((0.0..=1.0).contains(&x), "g out of range: {:?}", g);
            }
        }

        #[test]
        fn relationship_posterior_overshoot_is_clamped(
            n1 in 0.0f64..1.0,
            overshoot in 1.0f64..100.0,
        ) {
            // n2 > z - n1 by construction: the residual g3 must clamp to 0
            // and the rest renormalise.
            let z = n1 + 1.0;
            let n2 = (z - n1) * overshoot;
            let g = relationship_posterior(n1, n2, z);
            prop_assert_eq!(g[2], 0.0);
            prop_assert!((g[0] + g[1] - 1.0).abs() < 1e-12);
        }
    }
}
