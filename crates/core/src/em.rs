//! The EM inference algorithm for the TDH model (§3.2 of the paper).
//!
//! Each iteration computes, in one pass over records and answers, the E-step
//! conditionals of Fig. 4 — the truth posteriors `f^v_{o,s}` / `f^v_{o,w}`
//! and the relationship-type posteriors `g^t_{o,s}` / `g^t_{o,w}` — and folds
//! them straight into the M-step accumulators of Eq. (9)–(11). The MAP
//! objective `F` (Eq. 8) is tracked for convergence.
//!
//! The E-step is independent across objects, so the pass is sharded over
//! `0..n_objects` by the [`crate::par`] executor: each worker thread scans a
//! contiguous chunk of objects into private accumulators, which are merged in
//! fixed chunk order. [`TdhConfig::n_threads`] controls the shard count;
//! `1` reproduces the sequential accumulation order bit-for-bit, and any
//! shard count yields parameters equal up to FP-summation regrouping (the
//! facade's `parallel_equivalence` suite asserts 1e-9 agreement end-to-end,
//! with identical predicted truths on every tested corpus — an object whose
//! top two posteriors tie within that regrouping noise could in principle
//! flip, which the bench `scaling` scenario cross-checks and reports).

use std::ops::Range;

use tdh_data::{Dataset, ObservationIndex};

use crate::model::{prior_mean, TdhConfig, TdhModel};
use crate::par;

/// Diagnostics from one EM run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Number of EM iterations performed.
    pub iterations: usize,
    /// Final value of the MAP objective `F` (up to additive constants).
    /// `None` when no iteration ran (`max_iters = 0`) or the last iteration's
    /// objective was non-finite, so downstream consumers (bench JSON,
    /// convergence traces) never see `-inf`/NaN silently propagate.
    pub objective: Option<f64>,
    /// Whether the relative-improvement stopping rule fired before
    /// `max_iters`. Only ever fires on a non-descending step — a trace that
    /// is actively decreasing is a modeling/numerics problem, not
    /// convergence (check [`FitReport::monotone`] for dips earlier in the
    /// trace).
    pub converged: bool,
    /// Whether the objective trace never decreased beyond FP-noise slack
    /// (1e-9 relative). EM ascends the MAP objective, so `false` flags a
    /// numerics or configuration problem worth surfacing.
    pub monotone: bool,
    /// Objective value before each parameter update (one entry per
    /// iteration).
    pub trace: Vec<f64>,
}

/// Clamp for logarithms of vanishing probabilities.
const LOG_FLOOR: f64 = 1e-300;

/// Relative slack under which an objective decrease is attributed to
/// floating-point noise rather than a genuinely descending trace.
pub(crate) const MONOTONE_SLACK: f64 = 1e-9;

/// The stopping rule of `run_em`, factored out so its edge cases are unit
/// testable: a step converges only when its magnitude is below `tol` *and*
/// it did not descend beyond [`MONOTONE_SLACK`] — a sequence of small
/// decreases (FP noise blown up by ablation configs) is not a fixed point.
/// A dip earlier in the trace is latched into `monotone` for the report but
/// does not forfeit a later genuine plateau (the renormalised E-step clamp
/// makes EM's ascent guarantee approximate, so a transient dip must not
/// force every remaining iteration).
pub(crate) struct ConvergenceMonitor {
    tol: f64,
    prev: Option<f64>,
    monotone: bool,
}

impl ConvergenceMonitor {
    pub(crate) fn new(tol: f64) -> Self {
        ConvergenceMonitor {
            tol,
            prev: None,
            monotone: true,
        }
    }

    /// `true` while no observed step decreased beyond the noise slack.
    pub(crate) fn monotone(&self) -> bool {
        self.monotone
    }

    /// Feed the next objective value; returns `true` when the run has
    /// converged.
    pub(crate) fn observe(&mut self, obj: f64) -> bool {
        let Some(prev) = self.prev.replace(obj) else {
            return false;
        };
        if !obj.is_finite() {
            // A collapse from a finite objective to -inf/NaN is the worst
            // possible descent, not a gap in the record.
            if prev.is_finite() {
                self.monotone = false;
            }
            return false;
        }
        if !prev.is_finite() {
            return false;
        }
        let scale = prev.abs().max(1.0);
        if obj < prev - MONOTONE_SLACK * scale {
            self.monotone = false;
            return false;
        }
        (obj - prev).abs() / scale < self.tol
    }
}

pub(crate) fn run_em(model: &mut TdhModel, ds: &Dataset, idx: &ObservationIndex) -> FitReport {
    let cfg = *model.config();
    let n_threads = par::effective_threads(cfg.n_threads);
    initialize(model, ds, idx, &cfg);

    let mut trace = Vec::new();
    let mut monitor = ConvergenceMonitor::new(cfg.tol);
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        let obj = em_iteration(model, idx, &cfg, n_threads);
        trace.push(obj);
        if monitor.observe(obj) {
            converged = true;
            break;
        }
    }

    FitReport {
        iterations,
        objective: trace.last().copied().filter(|o| o.is_finite()),
        converged,
        monotone: monitor.monotone(),
        trace,
    }
}

/// Initial parameters: priors' means for `φ`/`ψ`, claim-frequency smoothing
/// for `μ` (a vote-shaped start converges in a handful of iterations and is
/// deterministic).
fn initialize(model: &mut TdhModel, ds: &Dataset, idx: &ObservationIndex, cfg: &TdhConfig) {
    model.phi = vec![prior_mean(&cfg.alpha); ds.n_sources()];
    let n_workers = ds.n_workers().max(idx.n_workers());
    model.psi = vec![prior_mean(&cfg.beta); n_workers];
    model.mu = idx
        .views()
        .iter()
        .map(|view| {
            let k = view.n_candidates();
            if k == 0 {
                return Vec::new();
            }
            let total: f64 = (0..k)
                .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 1.0)
                .sum();
            (0..k)
                .map(|v| (f64::from(view.source_count[v] + view.worker_count[v]) + 1.0) / total)
                .collect()
        })
        .collect();
    model.n_ov = vec![Vec::new(); idx.n_objects()];
    model.d_o = vec![0.0; idx.n_objects()];
}

/// The relationship-type posterior `(g^1, g^2, g^3)` of Fig. 4 from the
/// unnormalised exact/generalized masses `n1`, `n2` and the total evidence
/// `z > 0`.
///
/// The residual `z - n1 - n2` can undershoot zero when `n2` overshoots
/// `z - n1` (hierarchy-aware `n2` sums descendant terms that are not a subset
/// of `z`'s decomposition), so the triple is clamped and renormalised to keep
/// it a distribution before it enters the `φ`/`ψ` accumulators.
pub(crate) fn relationship_posterior(n1: f64, n2: f64, z: f64) -> [f64; 3] {
    debug_assert!(z > 0.0, "caller filters non-positive evidence");
    let g1 = (n1 / z).max(0.0);
    let g2 = (n2 / z).max(0.0);
    let g3 = ((z - n1 - n2) / z).max(0.0);
    let s = g1 + g2 + g3;
    if s > 0.0 {
        [g1 / s, g2 / s, g3 / s]
    } else {
        // Unreachable for finite inputs with z > 0 (g3 = 1 when n1 = n2 = 0),
        // but keep the output a distribution even then.
        [1.0 / 3.0; 3]
    }
}

/// Private E-step accumulators for one contiguous chunk of objects.
///
/// `acc_mu` is indexed relative to the chunk start (each object belongs to
/// exactly one chunk); `acc_phi`/`acc_psi`/`log_lik` span all sources and
/// workers and are summed across chunks in fixed chunk order.
struct EStepAcc {
    acc_mu: Vec<Vec<f64>>,
    acc_phi: Vec<[f64; 3]>,
    acc_psi: Vec<[f64; 3]>,
    log_lik: f64,
}

/// Scan the E-step conditionals of Fig. 4 for `objects` into fresh
/// accumulators, reading the previous iteration's parameters from `model`.
fn e_step_chunk(
    model: &TdhModel,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    objects: Range<usize>,
) -> EStepAcc {
    let base = objects.start;
    let mut acc = EStepAcc {
        acc_mu: model.mu[objects.clone()]
            .iter()
            .map(|mu| vec![0.0; mu.len()])
            .collect(),
        acc_phi: vec![[0.0f64; 3]; model.phi.len()],
        acc_psi: vec![[0.0f64; 3]; model.psi.len()],
        log_lik: 0.0,
    };

    let mut posterior = Vec::new();
    for oi in objects {
        let view = &idx.views()[oi];
        let k = view.n_candidates();
        if k == 0 {
            continue;
        }
        let mu = &model.mu[oi];

        // --- Records ---
        for &(s, c) in &view.sources {
            let phi = &model.phi[s.index()];
            posterior.clear();
            let mut z = 0.0;
            for t in 0..k as u32 {
                let p =
                    TdhModel::source_likelihood_cfg(view, phi, c, t, cfg.ablation) * mu[t as usize];
                posterior.push(p);
                z += p;
            }
            if z <= 0.0 {
                continue;
            }
            acc.log_lik += z.max(LOG_FLOOR).ln();
            for (t, p) in posterior.iter().enumerate() {
                acc.acc_mu[oi - base][t] += p / z;
            }
            // g^1: the claim was the exact truth.
            let n1 = phi[0] * mu[c as usize];
            // g^2: the claim was a generalization of the truth — the truth
            // is then one of the claim's candidate descendants (Fig. 4).
            let n2 = if view.in_oh && cfg.ablation.hierarchy_aware {
                view.descendants[c as usize]
                    .iter()
                    .map(|&v| phi[1] / view.ancestors[v as usize].len() as f64 * mu[v as usize])
                    .sum::<f64>()
            } else {
                phi[1] * mu[c as usize]
            };
            let g = relationship_posterior(n1, n2, z);
            let a = &mut acc.acc_phi[s.index()];
            for t in 0..3 {
                a[t] += g[t];
            }
        }

        // --- Answers ---
        for &(w, c) in &view.workers {
            let psi = model.psi[w.index()];
            posterior.clear();
            let mut z = 0.0;
            for t in 0..k as u32 {
                let p = TdhModel::worker_likelihood_cfg(view, &psi, c, t, cfg.ablation)
                    * mu[t as usize];
                posterior.push(p);
                z += p;
            }
            if z <= 0.0 {
                continue;
            }
            acc.log_lik += z.max(LOG_FLOOR).ln();
            for (t, p) in posterior.iter().enumerate() {
                acc.acc_mu[oi - base][t] += p / z;
            }
            let n1 = psi[0] * mu[c as usize];
            let n2 = if view.in_oh && cfg.ablation.hierarchy_aware {
                view.descendants[c as usize]
                    .iter()
                    .map(|&v| {
                        TdhModel::worker_likelihood_cfg(view, &psi, c, v, cfg.ablation)
                            * mu[v as usize]
                    })
                    .sum::<f64>()
            } else {
                psi[1] * mu[c as usize]
            };
            let g = relationship_posterior(n1, n2, z);
            let a = &mut acc.acc_psi[w.index()];
            for t in 0..3 {
                a[t] += g[t];
            }
        }
    }
    acc
}

/// One E+M pass, with the E-step sharded over `n_threads` object chunks.
/// Returns the MAP objective evaluated at the *pre-update* parameters (the
/// quantity EM is guaranteed not to decrease).
fn em_iteration(
    model: &mut TdhModel,
    idx: &ObservationIndex,
    cfg: &TdhConfig,
    n_threads: usize,
) -> f64 {
    let n_obj = idx.n_objects();

    // --- E-step: per-chunk scans, merged in fixed chunk order so the result
    // is deterministic for a given thread count (and bit-identical to the
    // sequential pass when there is a single chunk). ---
    let chunks = {
        let model = &*model;
        par::map_chunks(n_obj, n_threads, |range| {
            e_step_chunk(model, idx, cfg, range)
        })
    };
    let mut acc_mu: Vec<Vec<f64>> = Vec::with_capacity(n_obj);
    let mut acc_phi = vec![[0.0f64; 3]; model.phi.len()];
    let mut acc_psi = vec![[0.0f64; 3]; model.psi.len()];
    let mut log_lik = 0.0f64;
    for (_, chunk) in chunks {
        acc_mu.extend(chunk.acc_mu);
        for (total, part) in acc_phi.iter_mut().zip(&chunk.acc_phi) {
            for t in 0..3 {
                total[t] += part[t];
            }
        }
        for (total, part) in acc_psi.iter_mut().zip(&chunk.acc_psi) {
            for t in 0..3 {
                total[t] += part[t];
            }
        }
        log_lik += chunk.log_lik;
    }

    // Log-priors (up to constants), completing Eq. (8).
    let mut log_prior = 0.0;
    for phi in &model.phi {
        for t in 0..3 {
            log_prior += (cfg.alpha[t] - 1.0) * phi[t].max(LOG_FLOOR).ln();
        }
    }
    for psi in &model.psi {
        for t in 0..3 {
            log_prior += (cfg.beta[t] - 1.0) * psi[t].max(LOG_FLOOR).ln();
        }
    }
    for mu in &model.mu {
        for &m in mu {
            log_prior += (cfg.gamma - 1.0) * m.max(LOG_FLOOR).ln();
        }
    }

    // --- M-step: Eq. (9), (10), (11) ---
    for oi in 0..n_obj {
        let view = &idx.views()[oi];
        let k = view.n_candidates();
        if k == 0 {
            continue;
        }
        let evidence = (view.sources.len() + view.workers.len()) as f64;
        let d = evidence + k as f64 * (cfg.gamma - 1.0);
        let n: Vec<f64> = (0..k).map(|v| acc_mu[oi][v] + cfg.gamma - 1.0).collect();
        for v in 0..k {
            model.mu[oi][v] = n[v] / d;
        }
        model.n_ov[oi] = n;
        model.d_o[oi] = d;
    }
    let alpha_excess: f64 = cfg.alpha.iter().map(|a| a - 1.0).sum();
    for (si, phi) in model.phi.iter_mut().enumerate() {
        let n_os = idx
            .objects_of_source(tdh_data::SourceId::from_index(si))
            .len() as f64;
        let denom = n_os + alpha_excess;
        for t in 0..3 {
            phi[t] = (acc_phi[si][t] + cfg.alpha[t] - 1.0) / denom;
        }
    }
    let beta_excess: f64 = cfg.beta.iter().map(|b| b - 1.0).sum();
    for (wi, psi) in model.psi.iter_mut().enumerate() {
        let n_ow = if wi < idx.n_workers() {
            idx.objects_of_worker(tdh_data::WorkerId::from_index(wi))
                .len() as f64
        } else {
            0.0
        };
        let denom = n_ow + beta_excess;
        for t in 0..3 {
            psi[t] = (acc_psi[wi][t] + cfg.beta[t] - 1.0) / denom;
        }
    }

    log_lik + log_prior
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tdh_hierarchy::HierarchyBuilder;

    /// Two reliable sources, one generalizer, one adversary, over enough
    /// objects for the reliabilities to be identifiable.
    fn corpus() -> Dataset {
        let mut b = HierarchyBuilder::new();
        for c in 0..6 {
            for r in 0..4 {
                for city in 0..4 {
                    b.add_path(&[
                        &format!("C{c}"),
                        &format!("C{c}R{r}"),
                        &format!("C{c}R{r}T{city}"),
                    ]);
                }
            }
        }
        let mut ds = Dataset::new(b.build());
        let good1 = ds.intern_source("good1");
        let good2 = ds.intern_source("good2");
        let generalizer = ds.intern_source("generalizer");
        let liar = ds.intern_source("liar");
        for i in 0..40 {
            let o = ds.intern_object(&format!("o{i}"));
            let c = i % 6;
            let r = i % 4;
            let city = i % 4;
            let h = ds.hierarchy();
            let truth = h.node_by_name(&format!("C{c}R{r}T{city}")).unwrap();
            let region = h.node_by_name(&format!("C{c}R{r}")).unwrap();
            let wrong = h
                .node_by_name(&format!("C{}R{}T{}", (c + 1) % 6, r, city))
                .unwrap();
            ds.set_gold(o, truth);
            ds.add_record(o, good1, truth);
            ds.add_record(o, good2, truth);
            ds.add_record(o, generalizer, region);
            ds.add_record(o, liar, wrong);
        }
        ds
    }

    fn config_with_threads(n_threads: usize) -> TdhConfig {
        TdhConfig {
            n_threads,
            ..Default::default()
        }
    }

    #[test]
    fn em_recovers_truths_and_reliabilities() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        // All truths recovered exactly: the two reliable sources outvote
        // the generalizer + liar *because* the generalizer's claims support
        // the truth hierarchically.
        for o in ds.objects() {
            assert_eq!(est.truths[o.index()], ds.gold(o), "object {o:?}");
        }
        // φ estimates reflect the construction.
        let phi_good = model.phi(tdh_data::SourceId(0));
        let phi_gen = model.phi(tdh_data::SourceId(2));
        let phi_liar = model.phi(tdh_data::SourceId(3));
        assert!(phi_good[0] > 0.8, "good source exact mass {phi_good:?}");
        assert!(
            phi_gen[1] > 0.6,
            "generalizer should carry its mass on φ2: {phi_gen:?}"
        );
        assert!(phi_liar[2] > 0.6, "liar wrong mass {phi_liar:?}");
    }

    #[test]
    fn objective_is_monotone_nondecreasing() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert!(rep.monotone, "monitor should agree the trace ascended");
        let trace = &rep.trace;
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "EM objective decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn confidences_are_distributions() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        for mu in &est.confidences {
            if mu.is_empty() {
                continue;
            }
            let s: f64 = mu.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "μ sums to {s}");
            assert!(mu.iter().all(|&x| x > 0.0), "γ=2 keeps μ interior");
        }
    }

    #[test]
    fn cached_statistics_reproduce_mu() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig::default());
        model.fit(&ds);
        for (oi, mu) in model.mu.iter().enumerate() {
            for (v, &m) in mu.iter().enumerate() {
                let recon = model.n_ov[oi][v] / model.d_o[oi];
                assert!((m - recon).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn credible_workers_flip_a_contested_object() {
        // Object 0 is contested 1 vs 1 between two sources; five workers
        // first prove themselves on twenty anchor objects and then
        // unanimously back one side of the contest.
        let mut b = HierarchyBuilder::new();
        for c in 0..5 {
            for t in 0..5 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}R"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let node = |ds: &Dataset, c: usize, t: usize| {
            ds.hierarchy().node_by_name(&format!("C{c}T{t}")).unwrap()
        };
        // Contested object.
        let o0 = ds.intern_object("contested");
        let side_a = node(&ds, 0, 0);
        let side_b = node(&ds, 1, 1);
        ds.set_gold(o0, side_b);
        ds.add_record(o0, s1, side_a);
        ds.add_record(o0, s2, side_b);
        // Anchor objects: both sources agree (keeps them credible too).
        let mut anchors = Vec::new();
        for i in 0..20 {
            let o = ds.intern_object(&format!("anchor{i}"));
            let t = node(&ds, 2 + i % 3, i % 5);
            ds.set_gold(o, t);
            ds.add_record(o, s1, t);
            ds.add_record(o, s2, t);
            anchors.push((o, t));
        }
        // Five workers answer all anchors correctly, then back side B.
        for wi in 0..5 {
            let w = ds.intern_worker(&format!("w{wi}"));
            for &(o, t) in &anchors {
                ds.add_answer(o, w, t);
            }
            ds.add_answer(o0, w, side_b);
        }
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert_eq!(
            est.truths[o0.index()],
            Some(side_b),
            "five credible unanimous workers must break the 1v1 tie"
        );
        // The anchors are non-hierarchical objects, where Eq. (4) cannot
        // separate "exact" from "generalized" — so assert on the combined
        // correct mass ψ1 + ψ2 and on wrongness being low.
        let psi = model.psi(tdh_data::WorkerId(0));
        assert!(
            psi[0] + psi[1] > 0.8,
            "anchored worker correct mass = {}",
            psi[0] + psi[1]
        );
        assert!(psi[2] < 0.2, "anchored worker ψ3 = {}", psi[2]);
    }

    #[test]
    fn report_reflects_convergence() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            max_iters: 200,
            ..Default::default()
        });
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert!(rep.converged, "should converge well before 200 iters");
        assert!(rep.iterations < 200);
        assert_eq!(rep.trace.len(), rep.iterations);
        assert_eq!(rep.objective, rep.trace.last().copied());
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::new(HierarchyBuilder::new().build());
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert!(est.truths.is_empty());
        // No evidence and no parameters: the objective is the empty sum, a
        // well-defined 0.0 — not -inf.
        let rep = model.fit_report().unwrap();
        assert_eq!(rep.objective, Some(0.0));
        assert!(rep.monotone);
    }

    #[test]
    fn zero_iterations_reports_no_objective() {
        let ds = corpus();
        let mut model = TdhModel::new(TdhConfig {
            max_iters: 0,
            ..Default::default()
        });
        model.fit(&ds);
        let rep = model.fit_report().unwrap();
        assert_eq!(rep.iterations, 0);
        assert_eq!(rep.objective, None, "no iteration ran, no objective");
        assert!(!rep.converged);
        assert!(rep.monotone, "an empty trace vacuously ascended");
        assert!(rep.trace.is_empty());
    }

    #[test]
    fn all_empty_views_report_prior_only_objective() {
        // Objects exist but nothing was ever claimed: every view has k = 0.
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        let mut ds = Dataset::new(b.build());
        ds.intern_object("o0");
        ds.intern_object("o1");
        ds.intern_source("idle");
        let mut model = TdhModel::new(TdhConfig::default());
        let est = model.fit(&ds);
        assert_eq!(est.truths, vec![None, None]);
        let rep = model.fit_report().unwrap();
        // The likelihood term is empty; the objective is the (finite)
        // log-prior of the initialized source parameters.
        let obj = rep.objective.expect("prior-only objective is finite");
        assert!(obj.is_finite());
        assert!(rep.converged, "a constant trace converges immediately");
    }

    #[test]
    fn strictly_decreasing_trace_never_converges() {
        // Each relative step is far below tol, so the old |Δ|-only rule
        // would have declared convergence at the second observation.
        let mut m = ConvergenceMonitor::new(1e-3);
        let mut obj = -100.0;
        for _ in 0..50 {
            assert!(!m.observe(obj), "descending trace must not converge");
            obj -= 1e-5 * obj.abs();
        }
        assert!(!m.monotone(), "the descent must be surfaced");
    }

    #[test]
    fn convergence_monitor_accepts_ascending_fixed_point() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-100.0));
        assert!(!m.observe(-50.0));
        assert!(!m.observe(-49.999));
        assert!(m.observe(-49.999 + 1e-9), "tiny ascent below tol converges");
        assert!(m.monotone());
    }

    #[test]
    fn transient_dip_surfaces_but_does_not_forfeit_a_later_plateau() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-100.0));
        assert!(!m.observe(-50.0));
        // A dip beyond slack: never a convergence step, latched in the
        // report...
        assert!(!m.observe(-50.001));
        assert!(!m.monotone());
        // ...but a later genuine plateau still stops the run instead of
        // burning every remaining iteration.
        assert!(!m.observe(-49.9));
        assert!(m.observe(-49.9));
        assert!(!m.monotone(), "the dip stays surfaced");
    }

    #[test]
    fn objective_collapse_is_not_monotone() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-10.0));
        assert!(!m.observe(f64::NEG_INFINITY));
        assert!(!m.monotone(), "finite → -inf is the worst descent");
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(-10.0));
        assert!(!m.observe(f64::NAN));
        assert!(!m.monotone());
        // Starting non-finite carries no ordering information.
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(f64::NEG_INFINITY));
        assert!(!m.observe(-10.0));
        assert!(m.monotone());
    }

    #[test]
    fn convergence_monitor_tolerates_fp_noise_dips() {
        let mut m = ConvergenceMonitor::new(1e-6);
        assert!(!m.observe(1e6));
        // A dip within MONOTONE_SLACK relative is FP noise, not a descent.
        assert!(m.observe(1e6 - 1e-4));
        assert!(m.monotone());
    }

    #[test]
    fn sharded_fit_matches_sequential() {
        let ds = corpus();
        let mut seq = TdhModel::new(config_with_threads(1));
        let mut par3 = TdhModel::new(config_with_threads(3));
        let est_seq = seq.fit(&ds);
        let est_par = par3.fit(&ds);
        assert_eq!(est_seq.truths, est_par.truths);
        for (a, b) in seq.phi.iter().zip(&par3.phi) {
            for t in 0..3 {
                assert!((a[t] - b[t]).abs() < 1e-9, "φ diverged: {a:?} vs {b:?}");
            }
        }
        for (a, b) in seq.mu.iter().zip(&par3.mu) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "μ diverged: {x} vs {y}");
            }
        }
        let (ra, rb) = (seq.fit_report().unwrap(), par3.fit_report().unwrap());
        assert_eq!(ra.iterations, rb.iterations);
        let (oa, ob) = (ra.objective.unwrap(), rb.objective.unwrap());
        assert!((oa - ob).abs() / oa.abs().max(1.0) < 1e-9);
    }

    #[test]
    fn sharded_fit_is_deterministic_across_repeats() {
        let ds = corpus();
        let run = || {
            let mut model = TdhModel::new(config_with_threads(4));
            let est = model.fit(&ds);
            (est, model.fit_report().unwrap().clone())
        };
        let (est1, rep1) = run();
        let (est2, rep2) = run();
        // Bitwise equality, not tolerance: fixed chunk boundaries and a
        // fixed merge order leave no room for scheduling nondeterminism.
        assert_eq!(est1, est2);
        assert_eq!(rep1, rep2);
    }

    proptest! {
        #[test]
        fn relationship_posterior_is_a_distribution(
            n1 in 0.0f64..10.0,
            n2 in 0.0f64..10.0,
            z in 1e-12f64..10.0,
        ) {
            let g = relationship_posterior(n1, n2, z);
            let s: f64 = g.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-12, "g sums to {}", s);
            for x in g {
                prop_assert!((0.0..=1.0).contains(&x), "g out of range: {:?}", g);
            }
        }

        #[test]
        fn relationship_posterior_overshoot_is_clamped(
            n1 in 0.0f64..1.0,
            overshoot in 1.0f64..100.0,
        ) {
            // n2 > z - n1 by construction: the residual g3 must clamp to 0
            // and the rest renormalise.
            let z = n1 + 1.0;
            let n2 = (z - n1) * overshoot;
            let g = relationship_posterior(n1, n2, z);
            prop_assert_eq!(g[2], 0.0);
            prop_assert!((g[0] + g[1] - 1.0).abs() < 1e-12);
        }
    }
}
