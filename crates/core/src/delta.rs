//! Incremental delta refit: EM over only the objects a claim batch touched,
//! with every other posterior frozen — work proportional to the delta, not
//! the corpus.
//!
//! A full fit leaves three caches behind on the model: the flat tables it
//! scanned, the final-iteration E-step `φ`/`ψ` sufficient statistics
//! ([`crate::em`]'s merged accumulators — exactly what the stored parameters
//! were computed from), and the per-object posteriors. [`TdhModel::fit_delta`]
//! exploits the additivity of the M-step closed forms (Eq. 10/11): a
//! source's update depends on the rest of the corpus only through the sum of
//! its per-claim relationship posteriors `g`, so freezing every untouched
//! object freezes its claims' contributions. The delta refit therefore
//!
//! 1. re-flattens only the touched rows
//!    ([`tdh_data::FlatObservations::refresh`]),
//! 2. subtracts the touched objects' *old* claims from the cached
//!    accumulators (evaluated at the current parameters and the carried-over
//!    posteriors — at convergence, the values the cache assigned them up to
//!    the stopping tolerance),
//! 3. runs EM over the touched objects only, updating the implicated
//!    sources/workers (the delta's one-hop closure) against
//!    `frozen base + live delta`,
//! 4. folds the final contributions back into the cache.
//!
//! # Drift debt
//!
//! Steps 2–3 are exact at an exact EM fixed point and `O(tol)`-approximate at
//! a converged one, and candidate-set growth shifts the likelihood geometry
//! of frozen neighbours (popularity counts, wrong-set sizes) that a delta
//! refit never revisits. Each accepted refit therefore adds its touched
//! fraction to [`TdhModel`]'s *drift debt*; once the accumulated debt would
//! exceed the caller's bound, [`TdhModel::fit_delta`] refuses with
//! [`DeltaRejected::DriftExceeded`] and the caller falls back to a full fit
//! (which resets the debt and rebuilds every cache exactly). A rejected call
//! leaves the model untouched, so the fallback full fit behaves exactly as
//! if the delta refit had never been attempted.

use std::fmt;
use std::mem;

use tdh_data::{Dataset, DeltaSet, FlatObject, ObservationIndex, SourceId, WorkerId};

use crate::em::{flat_source_likelihood, flat_worker_likelihood, relationship_posterior};
use crate::model::{prior_mean, TdhConfig, TdhModel};
use crate::traits::{argmax, TruthEstimate};

/// Diagnostics from one accepted [`TdhModel::fit_delta`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaFitReport {
    /// Number of objects the refit re-estimated.
    pub touched_objects: usize,
    /// Delta-EM iterations performed (zero for an empty delta).
    pub iterations: usize,
    /// Whether the parameter-step stopping rule fired before
    /// [`TdhConfig::max_iters`].
    pub converged: bool,
    /// The delta's touched fraction of the corpus.
    pub touched_frac: f64,
    /// The model's accumulated drift debt *after* this refit.
    pub debt: f64,
}

/// Why [`TdhModel::fit_delta`] declined to run. A rejected call leaves the
/// model untouched; the caller should fall back to a full fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaRejected {
    /// [`crate::TdhConfig::warm_start`] is off: the model deliberately
    /// forgets its fit history, so there is no baseline to patch.
    WarmStartDisabled,
    /// No usable caches: the model was never fully fitted (or was
    /// [`TdhModel::restore`]d from parameters alone, which carries no E-step
    /// statistics).
    NoBaseline,
    /// Accepting this delta would push the accumulated drift debt past the
    /// caller's bound.
    DriftExceeded {
        /// The debt the refit would have reached.
        debt: f64,
    },
}

impl fmt::Display for DeltaRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaRejected::WarmStartDisabled => {
                write!(
                    f,
                    "delta refit requires warm starts (TdhConfig::warm_start)"
                )
            }
            DeltaRejected::NoBaseline => {
                write!(
                    f,
                    "no full-fit baseline to patch (model never fully fitted)"
                )
            }
            DeltaRejected::DriftExceeded { debt } => {
                write!(f, "accumulated drift debt {debt:.3} exceeds the bound")
            }
        }
    }
}

impl std::error::Error for DeltaRejected {}

impl TdhModel {
    /// The accumulated drift debt: the sum of touched fractions accepted by
    /// delta refits since the last full fit (zero right after one).
    pub fn delta_debt(&self) -> f64 {
        self.delta_debt
    }

    /// Incremental EM over only the `delta`'s touched objects, with every
    /// other posterior frozen. `idx` must already contain the delta's claims
    /// (i.e. be the index whose [`tdh_data::ObservationIndex::append_from`]
    /// produced — possibly via [`DeltaSet::merge`] — the `delta`).
    ///
    /// On success the model is in the same shape a full fit leaves it in:
    /// `μ`/`N_{o,v}`/`D_o` updated for the touched objects, `φ`/`ψ` updated
    /// for the implicated sources/workers, the warm-start parameters and the
    /// delta caches refreshed — so full fits, delta refits and the
    /// incremental posterior (Eq. 16–18) can be interleaved freely. The
    /// [`crate::FitReport`] of the last *full* fit is left alone.
    ///
    /// `max_debt` bounds the accumulated drift debt (see the module docs);
    /// `0.0` rejects every non-empty delta, `1.0` allows roughly a corpus
    /// worth of touched rows between full fits. On `Err` the model is
    /// untouched and the caller should run a full fit instead. At least one
    /// E+M pass runs even when [`TdhConfig::max_iters`] is zero, so a new
    /// claim is never silently ignored.
    pub fn fit_delta(
        &mut self,
        ds: &Dataset,
        idx: &ObservationIndex,
        delta: &DeltaSet,
        max_debt: f64,
    ) -> Result<DeltaFitReport, DeltaRejected> {
        let cfg = *self.config();
        if delta.is_empty() {
            return Ok(DeltaFitReport {
                touched_objects: 0,
                iterations: 0,
                converged: true,
                touched_frac: 0.0,
                debt: self.delta_debt,
            });
        }
        if !cfg.warm_start {
            return Err(DeltaRejected::WarmStartDisabled);
        }
        if self.prev.is_none() || self.acc_cache.is_none() || self.flat_cache.is_none() {
            return Err(DeltaRejected::NoBaseline);
        }
        let touched_frac = delta.touched_frac(idx.n_objects());
        let debt = self.delta_debt + touched_frac;
        if debt > max_debt {
            return Err(DeltaRejected::DriftExceeded { debt });
        }

        // Re-flatten only the touched rows; untouched spans are copied.
        let mut flat = self.flat_cache.take().expect("checked above");
        flat.refresh(idx, delta);

        // Grow the parameter tables to the post-delta universe (new entities
        // start at the prior mean / empty rows, exactly like a cold init).
        let n_obj = idx.n_objects();
        let n_src = ds.n_sources().max(idx.n_sources());
        let n_wrk = ds.n_workers().max(idx.n_workers());
        if self.phi.len() < n_src {
            self.phi.resize(n_src, prior_mean(&cfg.alpha));
        }
        if self.psi.len() < n_wrk {
            self.psi.resize(n_wrk, prior_mean(&cfg.beta));
        }
        if self.mu.len() < n_obj {
            self.mu.resize(n_obj, Vec::new());
            self.n_ov.resize(n_obj, Vec::new());
            self.d_o.resize(n_obj, 0.0);
        }
        let mut acc = self.acc_cache.take().expect("checked above");
        if acc.phi.len() < self.phi.len() {
            acc.phi.resize(self.phi.len(), [0.0; 3]);
        }
        if acc.psi.len() < self.psi.len() {
            acc.psi.resize(self.psi.len(), [0.0; 3]);
        }

        // Working μ rows for the touched objects: the previous posterior
        // carried over by candidate value (the same overlay a warm full fit
        // applies), vote-prior mass for inserted candidates and new objects.
        let touched = delta.objects();
        let prev = self.prev.as_ref().expect("checked above");
        let mut mu_rows: Vec<Vec<f64>> = Vec::with_capacity(touched.len());
        for t in touched {
            let view = idx.view(t.object);
            let k = view.n_candidates();
            if k == 0 {
                mu_rows.push(Vec::new());
                continue;
            }
            let total: f64 = (0..k)
                .map(|v| f64::from(view.source_count[v] + view.worker_count[v]) + 1.0)
                .sum();
            let mut row: Vec<f64> = (0..k)
                .map(|v| (f64::from(view.source_count[v] + view.worker_count[v]) + 1.0) / total)
                .collect();
            if let Some(prev_row) = prev.mu.get(t.object.index()) {
                let mut missing = 0usize;
                for (v, slot) in view.candidates.iter().zip(row.iter_mut()) {
                    match prev_row.binary_search_by(|&(c, _)| c.cmp(v)) {
                        Ok(p) => *slot = prev_row[p].1,
                        Err(_) => missing += 1,
                    }
                }
                if missing > 0 && missing < row.len() {
                    let z: f64 = row.iter().sum();
                    if z > 0.0 {
                        for x in row.iter_mut() {
                            *x /= z;
                        }
                    }
                }
            }
            mu_rows.push(row);
        }

        // Local parameter tables over the implicated entities; the one-hop
        // closure guarantees every claiming entity of a touched object is in
        // them, so claim scans below always resolve.
        let src_ids = delta.sources();
        let wrk_ids = delta.workers();
        let mut phi_l: Vec<[f64; 3]> = src_ids.iter().map(|s| self.phi[s.index()]).collect();
        let mut psi_l: Vec<[f64; 3]> = wrk_ids.iter().map(|w| self.psi[w.index()]).collect();

        // Subtract the touched objects' old-claim contributions from the
        // cached sufficient statistics (only the old-claim *prefix* of each
        // row predates the delta — see `TouchedObject`). What remains is the
        // frozen rest of the corpus.
        let mut base_phi: Vec<[f64; 3]> = src_ids.iter().map(|s| acc.phi[s.index()]).collect();
        let mut base_psi: Vec<[f64; 3]> = wrk_ids.iter().map(|w| acc.psi[w.index()]).collect();
        let mut scratch: Vec<f64> = Vec::new();
        for (ti, t) in touched.iter().enumerate() {
            let fo = flat.object(t.object.index());
            if fo.n_candidates() == 0 {
                continue;
            }
            let mu = &mu_rows[ti];
            let old_r = t.old_records as usize;
            for (&s, &c) in fo.rec_src()[..old_r].iter().zip(fo.rec_cand()) {
                let li = local_source(src_ids, SourceId(s));
                let Some((g, _)) = record_conditionals(&fo, &cfg, &phi_l[li], c, mu, &mut scratch)
                else {
                    continue;
                };
                for x in 0..3 {
                    base_phi[li][x] -= g[x];
                }
            }
            let old_a = t.old_answers as usize;
            for (&w, &c) in fo.ans_wrk()[..old_a].iter().zip(fo.ans_cand()) {
                let li = local_worker(wrk_ids, WorkerId(w));
                let Some((g, _)) = answer_conditionals(&fo, &cfg, &psi_l[li], c, mu, &mut scratch)
                else {
                    continue;
                };
                for x in 0..3 {
                    base_psi[li][x] -= g[x];
                }
            }
        }

        // EM over the touched objects against `frozen base + live delta`.
        // Convergence is a parameter-step rule (the delta objective is not
        // comparable across refits): stop when no μ/φ/ψ entry moved by tol.
        let alpha_excess: f64 = cfg.alpha.iter().map(|a| a - 1.0).sum();
        let beta_excess: f64 = cfg.beta.iter().map(|b| b - 1.0).sum();
        let mut acc_mu_rows: Vec<Vec<f64>> = mu_rows.iter().map(|r| vec![0.0; r.len()]).collect();
        let mut d_rows: Vec<f64> = vec![0.0; touched.len()];
        let mut new_phi = vec![[0.0f64; 3]; phi_l.len()];
        let mut new_psi = vec![[0.0f64; 3]; psi_l.len()];
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..cfg.max_iters.max(1) {
            iterations += 1;
            // E phase.
            for a in new_phi.iter_mut() {
                *a = [0.0; 3];
            }
            for a in new_psi.iter_mut() {
                *a = [0.0; 3];
            }
            for row in acc_mu_rows.iter_mut() {
                for x in row.iter_mut() {
                    *x = 0.0;
                }
            }
            for (ti, t) in touched.iter().enumerate() {
                let fo = flat.object(t.object.index());
                if fo.n_candidates() == 0 {
                    continue;
                }
                let mu = &mu_rows[ti];
                let acc_mu = &mut acc_mu_rows[ti];
                for (&s, &c) in fo.rec_src().iter().zip(fo.rec_cand()) {
                    let li = local_source(src_ids, SourceId(s));
                    let Some((g, z)) =
                        record_conditionals(&fo, &cfg, &phi_l[li], c, mu, &mut scratch)
                    else {
                        continue;
                    };
                    for (slot, p) in acc_mu.iter_mut().zip(&scratch) {
                        *slot += p / z;
                    }
                    for x in 0..3 {
                        new_phi[li][x] += g[x];
                    }
                }
                for (&w, &c) in fo.ans_wrk().iter().zip(fo.ans_cand()) {
                    let li = local_worker(wrk_ids, WorkerId(w));
                    let Some((g, z)) =
                        answer_conditionals(&fo, &cfg, &psi_l[li], c, mu, &mut scratch)
                    else {
                        continue;
                    };
                    for (slot, p) in acc_mu.iter_mut().zip(&scratch) {
                        *slot += p / z;
                    }
                    for x in 0..3 {
                        new_psi[li][x] += g[x];
                    }
                }
            }
            // M phase (Eq. 9–11, restricted to the delta).
            let mut max_step = 0.0f64;
            for (ti, t) in touched.iter().enumerate() {
                let fo = flat.object(t.object.index());
                let k = fo.n_candidates();
                if k == 0 {
                    d_rows[ti] = 0.0;
                    continue;
                }
                let d = fo.n_evidence() as f64 + k as f64 * (cfg.gamma - 1.0);
                d_rows[ti] = d;
                let acc_mu = &mut acc_mu_rows[ti];
                for n in acc_mu.iter_mut() {
                    *n += cfg.gamma - 1.0;
                }
                if d == 0.0 {
                    continue;
                }
                for (slot, n) in mu_rows[ti].iter_mut().zip(acc_mu.iter()) {
                    let next = n / d;
                    max_step = max_step.max((next - *slot).abs());
                    *slot = next;
                }
            }
            for (li, s) in src_ids.iter().enumerate() {
                let denom = f64::from(flat.recs_per_source[s.index()]) + alpha_excess;
                for t in 0..3 {
                    let next = (base_phi[li][t] + new_phi[li][t] + cfg.alpha[t] - 1.0) / denom;
                    max_step = max_step.max((next - phi_l[li][t]).abs());
                    phi_l[li][t] = next;
                }
            }
            for (li, w) in wrk_ids.iter().enumerate() {
                let n_ow = match flat.ans_per_worker.get(w.index()) {
                    Some(&n) => f64::from(n),
                    None => 0.0,
                };
                let denom = n_ow + beta_excess;
                for t in 0..3 {
                    let next = (base_psi[li][t] + new_psi[li][t] + cfg.beta[t] - 1.0) / denom;
                    max_step = max_step.max((next - psi_l[li][t]).abs());
                    psi_l[li][t] = next;
                }
            }
            if max_step < cfg.tol {
                converged = true;
                break;
            }
        }

        // Install the results: parameters, the incremental-EM cache rows and
        // the refreshed sufficient statistics (final-iteration accumulators,
        // preserving the `φ = (acc + α − 1) / denom` invariant a full fit
        // maintains).
        for (li, s) in src_ids.iter().enumerate() {
            self.phi[s.index()] = phi_l[li];
            let a = &mut acc.phi[s.index()];
            for t in 0..3 {
                a[t] = base_phi[li][t] + new_phi[li][t];
            }
        }
        for (li, w) in wrk_ids.iter().enumerate() {
            self.psi[w.index()] = psi_l[li];
            let a = &mut acc.psi[w.index()];
            for t in 0..3 {
                a[t] = base_psi[li][t] + new_psi[li][t];
            }
        }
        for (ti, t) in touched.iter().enumerate() {
            let oi = t.object.index();
            self.mu[oi] = mem::take(&mut mu_rows[ti]);
            self.n_ov[oi] = mem::take(&mut acc_mu_rows[ti]);
            self.d_o[oi] = d_rows[ti];
        }

        // Refresh the warm-start parameters so the next fit — full or delta —
        // resumes from here.
        let prev = self.prev.as_mut().expect("checked above");
        prev.phi.clone_from(&self.phi);
        prev.psi.clone_from(&self.psi);
        if prev.mu.len() < n_obj {
            prev.mu.resize(n_obj, Vec::new());
        }
        for t in touched {
            let oi = t.object.index();
            prev.mu[oi] = idx
                .view(t.object)
                .candidates
                .iter()
                .zip(&self.mu[oi])
                .map(|(&c, &m)| (c, m))
                .collect();
        }

        self.acc_cache = Some(acc);
        self.flat_cache = Some(flat);
        self.delta_debt = debt;
        Ok(DeltaFitReport {
            touched_objects: touched.len(),
            iterations,
            converged,
            touched_frac,
            debt,
        })
    }

    /// Patch a previously-produced estimate in place after a successful
    /// [`TdhModel::fit_delta`]: only the delta's touched rows are recomputed
    /// (growing the estimate for objects appended since it was made), every
    /// other row keeps its bits.
    pub fn patch_estimate(
        &self,
        idx: &ObservationIndex,
        delta: &DeltaSet,
        est: &mut TruthEstimate,
    ) {
        let n = idx.n_objects();
        if est.truths.len() < n {
            est.truths.resize(n, None);
            est.confidences.resize(n, Vec::new());
        }
        for t in delta.objects() {
            let oi = t.object.index();
            let mu = &self.mu[oi];
            est.truths[oi] = argmax(mu).map(|i| idx.view(t.object).candidates[i]);
            est.confidences[oi] = mu.clone();
        }
    }
}

/// Position of `s` in the delta's sorted implicated-source list.
fn local_source(ids: &[SourceId], s: SourceId) -> usize {
    ids.binary_search(&s)
        .expect("one-hop closure covers every claiming source")
}

/// Position of `w` in the delta's sorted implicated-worker list.
fn local_worker(ids: &[WorkerId], w: WorkerId) -> usize {
    ids.binary_search(&w)
        .expect("one-hop closure covers every answering worker")
}

/// One record claim's E-step conditionals at (`phi`, `mu`): the
/// relationship-posterior triple `g` and the evidence `z`, with the
/// unnormalised per-truth posterior left in `scratch`. `None` when the claim
/// carries no evidence (`z ≤ 0`), matching the full E-step's skip. Mirrors
/// `em::e_step_chunk`'s record branch operation for operation.
fn record_conditionals(
    fo: &FlatObject<'_>,
    cfg: &TdhConfig,
    phi: &[f64; 3],
    c: u32,
    mu: &[f64],
    scratch: &mut Vec<f64>,
) -> Option<([f64; 3], f64)> {
    let k = fo.n_candidates();
    scratch.clear();
    let mut z = 0.0;
    for t in 0..k as u32 {
        let p = flat_source_likelihood(fo, phi, c, t, cfg.ablation) * mu[t as usize];
        scratch.push(p);
        z += p;
    }
    if z <= 0.0 {
        return None;
    }
    let n1 = phi[0] * mu[c as usize];
    let n2 = if fo.in_oh && cfg.ablation.hierarchy_aware {
        fo.descendants(c)
            .iter()
            .map(|&v| phi[1] / fo.anc_len(v) as f64 * mu[v as usize])
            .sum::<f64>()
    } else {
        phi[1] * mu[c as usize]
    };
    Some((relationship_posterior(n1, n2, z), z))
}

/// [`record_conditionals`] for a worker answer; mirrors `em::e_step_chunk`'s
/// answer branch.
fn answer_conditionals(
    fo: &FlatObject<'_>,
    cfg: &TdhConfig,
    psi: &[f64; 3],
    c: u32,
    mu: &[f64],
    scratch: &mut Vec<f64>,
) -> Option<([f64; 3], f64)> {
    let k = fo.n_candidates();
    scratch.clear();
    let mut z = 0.0;
    for t in 0..k as u32 {
        let p = flat_worker_likelihood(fo, psi, c, t, cfg.ablation) * mu[t as usize];
        scratch.push(p);
        z += p;
    }
    if z <= 0.0 {
        return None;
    }
    let n1 = psi[0] * mu[c as usize];
    let n2 = if fo.in_oh && cfg.ablation.hierarchy_aware {
        fo.descendants(c)
            .iter()
            .map(|&v| flat_worker_likelihood(fo, psi, c, v, cfg.ablation) * mu[v as usize])
            .sum::<f64>()
    } else {
        psi[1] * mu[c as usize]
    };
    Some((relationship_posterior(n1, n2, z), z))
}
