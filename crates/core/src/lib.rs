//! The TDH algorithm — *Truth Discovery in the presence of Hierarchies* —
//! and its crowdsourcing companion, the EAI task assigner.
//!
//! This crate implements the primary contribution of Jung, Kim & Shim
//! (EDBT 2019):
//!
//! * [`TdhModel`] — the probabilistic model of §3 (Fig. 3): every source `s`
//!   and worker `w` carries a *three-way* trustworthiness distribution over
//!   {exactly correct, hierarchically correct, incorrect}, and every object
//!   a confidence distribution `μ_o` over its candidate values. Inference is
//!   MAP estimation via EM (Fig. 4 E-step, Eq. 9–11 M-step).
//! * [`TdhModel::posterior_given_answer`] — the incremental EM of §4.2
//!   (Eq. 16–18): the conditional confidence after one hypothetical answer,
//!   computed from the cached M-step numerators `N_{o,v}` and denominators
//!   `D_o` in O(|V_o|) instead of a full EM rerun.
//! * [`TdhModel::fit_delta`] — the incremental *delta refit*: EM over only
//!   the objects a claim batch touched ([`tdh_data::DeltaSet`]), with every
//!   other posterior frozen and the implicated `φ`/`ψ` updated from cached
//!   sufficient statistics; a drift bound falls back to a full fit.
//! * [`EaiAssigner`] — the task assigner of §4: the *Expected Accuracy
//!   Increase* quality measure (Eq. 14–15), the `UEAI` upper bound
//!   (Lemma 4.1) and the heap-based Algorithm 1 that assigns the top-`k`
//!   objects to each worker with pruning.
//! * [`numeric`] — the §3.2 extension: TDH over the implicit
//!   significant-figure hierarchy of numeric claims.
//! * [`par`] — the deterministic parallel substrate: chunking primitives
//!   (re-exported from `tdh-data`) plus the persistent [`par::ThreadPool`]
//!   each fit spawns once and reuses across every EM iteration
//!   ([`TdhConfig::n_threads`]). The index build, the E-step and the
//!   M-step `φ`/`ψ` updates all ride on it; per-chunk results are merged
//!   in fixed order, so multi-core inference is reproducible run-to-run.
//!
//! The crate also defines the abstractions the rest of the workspace plugs
//! into: [`TruthDiscovery`] (any inference algorithm),
//! [`ProbabilisticCrowdModel`] (inference algorithms that expose the
//! confidence/worker machinery task assignment needs) and [`TaskAssigner`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod assign;
mod delta;
mod em;
mod model;
pub mod numeric;
pub mod par;
mod traits;

pub use assign::{assign_exhaustive, eai, ueai, EaiAssigner};
pub use delta::{DeltaFitReport, DeltaRejected};
pub use em::{FitReport, PhaseTimings};
pub use model::{AblationFlags, TdhConfig, TdhModel, WarmStart};
pub use traits::{
    Assignment, ProbabilisticCrowdModel, TaskAssigner, TruthDiscovery, TruthEstimate,
};
