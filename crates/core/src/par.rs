//! Deterministic parallel execution for the TDH hot paths.
//!
//! Two layers live here:
//!
//! * The **chunking primitives** [`chunk_ranges`], [`map_chunks`] and
//!   [`effective_threads`], re-exported from [`tdh_data::par`] so the data
//!   crate's parallel index build and the EM loop agree on chunk boundaries
//!   (they depend only on `(n, n_threads)`, never on scheduling).
//! * The **persistent worker pool** [`ThreadPool`], entered through
//!   [`with_pool`]: long-lived threads fed plain-data jobs over channels,
//!   spawned **once** and reused across every batch submitted inside the
//!   scope. The EM driver keeps one pool alive for a whole fit, so the
//!   per-iteration scoped-spawn overhead of the previous executor (one
//!   `thread::spawn` per chunk per iteration) is paid exactly once per fit.
//!
//! Determinism contract: jobs are dispatched round-robin in submission
//! order and results are returned **in submission order** regardless of
//! which worker finishes first. Callers that accumulate floating-point
//! state merge those results in fixed chunk order, so repeated runs are
//! bit-identical for a given `(n, n_threads)`. With `n_threads <= 1` no
//! thread is spawned at all: [`ThreadPool::run_batch`] executes every job
//! inline on the calling thread, reproducing the sequential accumulation
//! order bit-for-bit. Across *different* thread counts, floating-point
//! reductions are regrouped `(per-chunk partials, merged in order)` and
//! agree with the sequential path only up to FP-summation tolerance
//! (the facade's `pool_equivalence` suite asserts 1e-9 end-to-end).
//!
//! The pool is hand-rolled on `std::sync::mpsc` because the build
//! environment has no crates.io access (see `vendor/README.md`); when a
//! registry is reachable, `rayon` can replace it wholesale — the call
//! sites only rely on the ordered-batch contract above.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

pub use tdh_data::par::{chunk_ranges, chunk_ranges_weighted, effective_threads, map_chunks};

use std::ops::Range;

/// Why a [`ThreadPool::run_batch`] submission failed.
#[derive(Debug)]
pub enum PoolError {
    /// A job panicked. The panic is caught on the worker so the pool (and
    /// the batches queued behind the failing one) keep working; the caller
    /// decides whether to resume the panic. The default panic hook has
    /// already printed the original message and backtrace to stderr.
    JobPanicked {
        /// Index of the panicking job within its batch (the smallest index
        /// when several jobs panic, so the error is deterministic).
        job: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A worker thread disappeared (its result channel closed mid-batch).
    /// Surfaced as an error instead of blocking forever on results that can
    /// no longer arrive.
    Disconnected,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::JobPanicked { job, message } => {
                write!(f, "pool job {job} panicked: {message}")
            }
            PoolError::Disconnected => write!(f, "pool worker thread disconnected"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Render a caught panic payload for [`PoolError::JobPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type JobResult<T> = std::thread::Result<T>;

/// A persistent, channel-fed worker pool (see the module docs for the
/// determinism contract).
///
/// Created by [`with_pool`]; the handle is valid for the duration of the
/// scope closure and every [`ThreadPool::run_batch`] call reuses the same
/// worker threads. Jobs are plain values of type `J`; every worker runs the
/// single worker function the pool was created with, so per-fit shared
/// state is captured once (by the worker function) rather than smuggled
/// through every job.
pub struct ThreadPool<'a, J, T> {
    n_threads: usize,
    worker: &'a (dyn Fn(J) -> T + Sync),
    /// One job channel per worker; jobs are dealt round-robin in submission
    /// order. Empty when the pool runs inline (`n_threads <= 1`).
    senders: Vec<mpsc::Sender<(usize, J)>>,
    /// Shared result channel. `None` when the pool runs inline.
    results: Option<mpsc::Receiver<(usize, JobResult<T>)>>,
}

impl<J, T> ThreadPool<'_, J, T> {
    /// The effective thread count: the number of worker threads, or `1`
    /// when the pool executes inline on the caller. Chunked submissions
    /// ([`ThreadPool::run_chunks`]) produce exactly this many chunks, so
    /// FP-merge grouping matches the non-pooled `map_chunks(n, n_threads,
    /// ..)` executor for the same configuration.
    #[inline]
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Run a batch of jobs and return their results **in submission
    /// order**.
    ///
    /// An empty batch returns `Ok(vec![])` without touching the workers
    /// (degenerate `n == 0` phases are valid). On the inline path
    /// (`n_threads <= 1`) jobs run on the calling thread in order and the
    /// batch stops at the first panicking job; on the pooled path every job
    /// of the batch is executed (and buffers it carries are dropped) before
    /// the error is reported, keeping the workers idle — never deadlocked —
    /// between batches either way.
    pub fn run_batch(&self, jobs: Vec<J>) -> Result<Vec<T>, PoolError> {
        if self.senders.is_empty() {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| {
                    catch_unwind(AssertUnwindSafe(|| (self.worker)(job))).map_err(|p| {
                        PoolError::JobPanicked {
                            job: i,
                            message: panic_message(p.as_ref()),
                        }
                    })
                })
                .collect();
        }
        let n = jobs.len();
        for (i, job) in jobs.into_iter().enumerate() {
            self.senders[i % self.senders.len()]
                .send((i, job))
                .map_err(|_| PoolError::Disconnected)?;
        }
        let results = self.results.as_ref().expect("pooled path has a receiver");
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panicked: Option<(usize, String)> = None;
        for _ in 0..n {
            let (i, outcome) = results.recv().map_err(|_| PoolError::Disconnected)?;
            match outcome {
                Ok(value) => slots[i] = Some(value),
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    if panicked.as_ref().is_none_or(|(j, _)| i < *j) {
                        panicked = Some((i, message));
                    }
                }
            }
        }
        if let Some((job, message)) = panicked {
            return Err(PoolError::JobPanicked { job, message });
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every job reported exactly once"))
            .collect())
    }

    /// Convenience: build one job per chunk of `0..n` (at most
    /// [`ThreadPool::n_threads`] chunks, see [`chunk_ranges`]) and run the
    /// batch. `n == 0` submits nothing and returns `Ok(vec![])`.
    pub fn run_chunks(
        &self,
        n: usize,
        mut make_job: impl FnMut(Range<usize>) -> J,
    ) -> Result<Vec<T>, PoolError> {
        self.run_batch(
            chunk_ranges(n, self.n_threads)
                .into_iter()
                .map(&mut make_job)
                .collect(),
        )
    }
}

/// Create a [`ThreadPool`] of `n_threads` workers all running `worker`, and
/// hand it to `body`. Threads are spawned once (scoped — they may borrow
/// anything `worker` borrows), live for the whole call, and are joined when
/// `body` returns; with `n_threads <= 1` nothing is spawned and every batch
/// runs inline on the calling thread.
pub fn with_pool<J, T, R>(
    n_threads: usize,
    worker: &(dyn Fn(J) -> T + Sync),
    body: impl FnOnce(&ThreadPool<'_, J, T>) -> R,
) -> R
where
    J: Send,
    T: Send,
{
    let n_threads = n_threads.max(1);
    if n_threads == 1 {
        return body(&ThreadPool {
            n_threads,
            worker,
            senders: Vec::new(),
            results: None,
        });
    }
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = mpsc::channel();
        let mut senders = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let (job_tx, job_rx) = mpsc::channel::<(usize, J)>();
            senders.push(job_tx);
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                while let Ok((seq, job)) = job_rx.recv() {
                    let outcome = catch_unwind(AssertUnwindSafe(|| worker(job)));
                    if res_tx.send((seq, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        let pool = ThreadPool {
            n_threads,
            worker,
            senders,
            results: Some(res_rx),
        };
        let out = body(&pool);
        // Dropping the pool closes the job channels; the workers drain and
        // exit, and the scope joins them before `with_pool` returns.
        drop(pool);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pool_reuses_workers_across_submissions() {
        // One `with_pool` scope, many batches: the same long-lived workers
        // serve every submission, and results come back in job order.
        with_pool(4, &|x: u64| x * 2, |pool| {
            assert_eq!(pool.n_threads(), 4);
            for round in 0..5u64 {
                let jobs: Vec<u64> = (round..round + 10).collect();
                let out = pool.run_batch(jobs).expect("no panics");
                let want: Vec<u64> = (round..round + 10).map(|x| x * 2).collect();
                assert_eq!(out, want);
            }
        });
    }

    #[test]
    fn pool_panic_is_an_error_not_a_deadlock() {
        with_pool(
            3,
            &|x: u32| {
                assert!(x != 7, "boom on 7");
                x + 1
            },
            |pool| {
                let err = pool.run_batch((0..16).collect()).unwrap_err();
                match err {
                    PoolError::JobPanicked { job, message } => {
                        assert_eq!(job, 7);
                        assert!(message.contains("boom on 7"), "got {message:?}");
                    }
                    other => panic!("expected JobPanicked, got {other:?}"),
                }
                // The pool survives the panic: the next batch is served by
                // the same workers instead of hanging on a dead queue.
                assert_eq!(pool.run_batch(vec![1, 2, 3]).unwrap(), vec![2, 3, 4]);
            },
        );
    }

    #[test]
    fn inline_pool_reports_panics_too() {
        with_pool(
            1,
            &|x: u32| {
                assert!(x != 1, "inline boom");
                x
            },
            |pool| {
                assert!(pool.senders.is_empty(), "n_threads = 1 must not spawn");
                match pool.run_batch(vec![0, 1, 2]) {
                    Err(PoolError::JobPanicked { job: 1, .. }) => {}
                    other => panic!("expected JobPanicked at 1, got {other:?}"),
                }
            },
        );
    }

    #[test]
    fn empty_batches_and_zero_item_chunks_are_fine() {
        for n_threads in [1, 4] {
            with_pool(n_threads, &|x: usize| x, |pool| {
                assert!(pool.run_batch(Vec::new()).unwrap().is_empty());
                assert!(pool.run_chunks(0, |r| r.start).unwrap().is_empty());
            });
        }
    }

    #[test]
    fn run_chunks_with_fewer_items_than_threads() {
        with_pool(8, &|r: Range<usize>| r.len(), |pool| {
            // 3 items over 8 threads: three singleton chunks.
            assert_eq!(pool.run_chunks(3, |r| r).unwrap(), vec![1, 1, 1]);
        });
    }

    #[test]
    fn effective_threads_passthrough() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn chunk_ranges_edge_cases() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(1, 4), vec![0..1]);
        assert_eq!(chunk_ranges(5, 1), vec![0..5]);
        assert_eq!(chunk_ranges(5, 2), vec![0..3, 3..5]);
        assert_eq!(chunk_ranges(3, 8), vec![0..1, 1..2, 2..3]);
    }

    proptest! {
        #[test]
        fn chunks_partition_the_range(n in 0usize..200, t in 1usize..9) {
            let ranges = chunk_ranges(n, t);
            // Contiguous cover of 0..n in order, lengths within one of each
            // other, at most t chunks.
            prop_assert!(ranges.len() <= t);
            let mut next = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, next);
                prop_assert!(!r.is_empty());
                next = r.end;
            }
            prop_assert_eq!(next, n);
            if let (Some(min), Some(max)) = (
                ranges.iter().map(|r| r.len()).min(),
                ranges.iter().map(|r| r.len()).max(),
            ) {
                prop_assert!(max - min <= 1);
            }
        }

        #[test]
        fn chunked_reduction_matches_sequential(
            xs in proptest::collection::vec(0u64..1_000_000, 0..64),
            t in 1usize..6,
        ) {
            let seq: u64 = xs.iter().sum();
            let par: u64 = map_chunks(xs.len(), t, |r| xs[r].iter().sum::<u64>())
                .into_iter()
                .map(|(_, s)| s)
                .sum();
            prop_assert_eq!(seq, par);
        }

        #[test]
        fn pooled_batches_are_deterministic(n in 0usize..64, t in 1usize..6) {
            let xs: Vec<u64> = (0..n as u64).map(|i| i * 37 % 101).collect();
            let run = || {
                with_pool(t, &|r: Range<usize>| xs[r].iter().sum::<u64>(), |pool| {
                    (
                        pool.run_chunks(n, |r| r).unwrap(),
                        pool.run_chunks(n, |r| r).unwrap(),
                    )
                })
            };
            let (a1, a2) = run();
            let (b1, b2) = run();
            // Reuse within a scope and fresh scopes agree exactly.
            prop_assert_eq!(&a1, &a2);
            prop_assert_eq!(&a1, &b1);
            prop_assert_eq!(&b1, &b2);
            let total: u64 = a1.iter().sum();
            prop_assert_eq!(total, xs.iter().sum::<u64>());
        }
    }
}
