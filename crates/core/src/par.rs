//! Deterministic parallel reduction over contiguous index chunks.
//!
//! The E-step of the TDH EM loop is embarrassingly parallel across objects:
//! every object's truth/relationship posteriors depend only on the *previous*
//! iteration's parameters, so `0..n_objects` can be split into chunks that
//! worker threads scan independently (the conditioning-style per-object
//! independence probabilistic-DB engines exploit). This module provides the
//! small executor behind that sharding:
//!
//! * [`chunk_ranges`] splits `0..n` into at most `n_threads` contiguous,
//!   near-equal ranges — chunk boundaries depend only on `(n, n_threads)`,
//!   never on scheduling.
//! * [`map_chunks`] runs one closure per chunk on scoped threads
//!   ([`std::thread::scope`], no vendored dependencies) and returns the
//!   per-chunk results **in chunk order**.
//!
//! Because each chunk accumulates into its own private state and the caller
//! merges the returned accumulators in fixed chunk order, results are
//! bit-identical run-to-run for a given `(n, n_threads)`. With one chunk
//! (`n_threads <= 1` or tiny `n`) the closure runs on the calling thread over
//! the full range, reproducing the sequential accumulation order bit-for-bit.
//! Across *different* thread counts, floating-point sums are regrouped
//! `(per-chunk partials, merged in order)`, so reductions agree with the
//! sequential path only up to FP-summation tolerance (empirically ~1e-12
//! relative per merge; the workspace's equivalence suite asserts 1e-9
//! end-to-end).

use std::ops::Range;

/// Resolve a configured thread count to an effective one.
///
/// `0` means "auto": the `TDH_N_THREADS` environment variable when it parses
/// to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to `1` when even that is unavailable). Any non-zero value is
/// returned unchanged.
pub fn effective_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    if let Ok(s) = std::env::var("TDH_N_THREADS") {
        match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            // Falling back silently would let a typo'd override (CI pins
            // the sequential leg through this variable) masquerade as the
            // requested thread count.
            _ => eprintln!(
                "warning: ignoring invalid TDH_N_THREADS={s:?} (want a positive integer); \
                 using available parallelism"
            ),
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `0..n` into at most `n_threads` contiguous, near-equal, non-empty
/// ranges covering `0..n` exactly, in ascending order.
///
/// The first `n % chunks` ranges carry one extra element, so lengths differ
/// by at most one. Returns an empty vector when `n == 0`.
pub fn chunk_ranges(n: usize, n_threads: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = n_threads.clamp(1, n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Run `f` once per chunk of `0..n` and return `(range, result)` pairs in
/// chunk order.
///
/// With more than one chunk, each invocation runs on its own scoped thread;
/// with zero or one chunk, `f` runs on the calling thread (no spawn, exact
/// sequential order). The output order is the chunk order regardless of
/// which thread finishes first, which is what makes downstream merges
/// deterministic.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn map_chunks<T, F>(n: usize, n_threads: usize, f: F) -> Vec<(Range<usize>, T)>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, n_threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|r| (r.clone(), f(r))).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| (r.clone(), scope.spawn(move || f(r))))
            .collect();
        handles
            .into_iter()
            .map(|(r, h)| (r, h.join().expect("E-step worker thread panicked")))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn effective_threads_passthrough() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        // Auto resolves to something positive whatever the environment.
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn chunk_ranges_edge_cases() {
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(1, 4), vec![0..1]);
        assert_eq!(chunk_ranges(5, 1), vec![0..5]);
        assert_eq!(chunk_ranges(5, 2), vec![0..3, 3..5]);
        // More threads than items: one singleton chunk per item.
        assert_eq!(chunk_ranges(3, 8), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let out = map_chunks(10, 4, |r| r.start);
        let starts: Vec<usize> = out.iter().map(|(_, s)| *s).collect();
        assert_eq!(starts, vec![0, 3, 6, 8]);
        for (r, s) in &out {
            assert_eq!(r.start, *s);
        }
    }

    proptest! {
        #[test]
        fn chunks_partition_the_range(n in 0usize..200, t in 1usize..9) {
            let ranges = chunk_ranges(n, t);
            // Contiguous cover of 0..n in order, lengths within one of each
            // other, at most t chunks.
            prop_assert!(ranges.len() <= t);
            let mut next = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, next);
                prop_assert!(!r.is_empty());
                next = r.end;
            }
            prop_assert_eq!(next, n);
            if let (Some(min), Some(max)) = (
                ranges.iter().map(|r| r.len()).min(),
                ranges.iter().map(|r| r.len()).max(),
            ) {
                prop_assert!(max - min <= 1);
            }
        }

        #[test]
        fn chunked_reduction_matches_sequential(
            xs in proptest::collection::vec(0u64..1_000_000, 0..64),
            t in 1usize..6,
        ) {
            let seq: u64 = xs.iter().sum();
            let par: u64 = map_chunks(xs.len(), t, |r| xs[r].iter().sum::<u64>())
                .into_iter()
                .map(|(_, s)| s)
                .sum();
            prop_assert_eq!(seq, par);
        }

        #[test]
        fn map_chunks_is_deterministic(n in 0usize..64, t in 1usize..6) {
            let run = || map_chunks(n, t, |r| r.clone());
            prop_assert_eq!(run(), run());
        }
    }
}
