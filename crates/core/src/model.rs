//! The TDH probabilistic model: state, likelihoods and configuration.
//!
//! Notation follows §3 of the paper. For an object `o` with candidate set
//! `V_o`, truth `v*_o` and a claimed value `v`, the model distinguishes three
//! relationships: `v = v*_o` (exact), `v ∈ G_o(v*_o)` (a generalization of
//! the truth) and anything else (wrong). Sources draw their claims according
//! to a per-source distribution `φ_s` over the three cases (Eq. 1/2);
//! workers according to `ψ_w`, with the *popularity* of already-claimed
//! values shaping the generalized/wrong choices (Eq. 3/4) to capture the
//! source→worker dependency of widespread misinformation.

use std::sync::Arc;
use std::time::Instant;

use tdh_data::{Dataset, FlatObservations, ObjectId, ObjectView, ObservationIndex, WorkerId};
use tdh_hierarchy::NodeId;

use crate::em;
use crate::par;
use crate::traits::{argmax, ProbabilisticCrowdModel, TruthDiscovery, TruthEstimate};

/// Ablation switches for the TDH model, used by the `ablation` experiment
/// to quantify what each design choice contributes. Both default to the
/// paper's full model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationFlags {
    /// When `false`, the hierarchy is ignored: every object is treated as if
    /// it had no ancestor-descendant candidate pairs (Eq. 2/4 everywhere),
    /// reducing TDH to a classic two-interpretation model.
    pub hierarchy_aware: bool,
    /// When `false`, the worker model's popularity terms `Pop2`/`Pop3`
    /// (Eq. 3) are replaced by uniform distributions, removing the
    /// source → worker misinformation dependency.
    pub worker_popularity: bool,
}

impl Default for AblationFlags {
    fn default() -> Self {
        AblationFlags {
            hierarchy_aware: true,
            worker_popularity: true,
        }
    }
}

/// Hyperparameters and stopping rule for [`TdhModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdhConfig {
    /// Dirichlet prior over source trustworthiness `φ_s`. Paper default:
    /// `(3, 3, 2)` — "correct values are more frequent than wrong values for
    /// most of the sources".
    pub alpha: [f64; 3],
    /// Dirichlet prior over worker trustworthiness `ψ_w`. Paper default:
    /// `(2, 2, 2)`.
    pub beta: [f64; 3],
    /// Symmetric Dirichlet prior over object confidences `μ_o`. Paper
    /// default: 2 in every dimension.
    pub gamma: f64,
    /// Maximum number of EM iterations.
    pub max_iters: usize,
    /// Stop when the relative improvement of the MAP objective falls below
    /// this threshold.
    pub tol: f64,
    /// Ablation switches (both on = the published model).
    pub ablation: AblationFlags,
    /// Worker threads for parallel inference. `0` (the default) resolves at
    /// fit time to the `TDH_N_THREADS` environment variable when set, else
    /// to [`std::thread::available_parallelism`]. `1` runs the exact legacy
    /// sequential path in the calling thread (bit-identical accumulation
    /// order, no threads spawned); larger counts spawn one persistent
    /// [`crate::par::ThreadPool`] per fit — reused across every EM
    /// iteration — that shards the index build, the E-step and the M-step
    /// `φ`/`ψ` updates into contiguous chunks merged in fixed order, so
    /// repeated runs are bit-identical to each other and agree with the
    /// sequential path up to FP-summation regrouping (see [`crate::par`]).
    pub n_threads: usize,
    /// When `true` (the default), a refit of an already-fitted model seeds
    /// `φ`/`ψ`/`μ` from the previous fit instead of the cold prior/vote
    /// initialization, so growing workloads (crowdsourcing rounds, the
    /// `tdh-serve` ingestion loop) converge in a handful of EM iterations
    /// instead of re-deriving the posterior from scratch. Previous `μ`
    /// values are carried over **by candidate value**, so objects whose
    /// candidate sets grew between fits keep their learned mass and only
    /// the new candidates start from the vote prior. The *first* fit of a
    /// model is always cold, and both starts converge to the same EM fixed
    /// point on unchanged data (pinned by `tests/warm_start_equivalence.rs`).
    /// Set to `false` to force every fit cold (bit-reproducible independent
    /// of fit history).
    pub warm_start: bool,
}

impl Default for TdhConfig {
    fn default() -> Self {
        TdhConfig {
            alpha: [3.0, 3.0, 2.0],
            beta: [2.0, 2.0, 2.0],
            gamma: 2.0,
            max_iters: 100,
            tol: 1e-6,
            ablation: AblationFlags::default(),
            n_threads: 0,
            warm_start: true,
        }
    }
}

/// Fitted parameters exported in a *portable* form: `μ` entries are keyed by
/// candidate **value** (not candidate index), so they survive dataset growth
/// — a refit after new claims arrive can map each object's learned mass onto
/// the new candidate ordering even when fresh candidates were inserted in
/// the middle of the sorted candidate set.
///
/// Produced by [`TdhModel::warm_start_params`], consumed by
/// [`TdhModel::fit_from`] / [`TdhModel::infer_from`] and serialized by the
/// `tdh-serve` snapshot store.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// `φ_s` per source, indexed by [`tdh_data::SourceId`] (dense ids are
    /// append-only, so old indices stay valid as the universe grows).
    pub phi: Vec<[f64; 3]>,
    /// `ψ_w` per worker.
    pub psi: Vec<[f64; 3]>,
    /// Per object: `(candidate value, μ)` pairs in the fitted candidate
    /// order (sorted by node id).
    pub mu: Vec<Vec<(NodeId, f64)>>,
}

/// The fitted TDH model.
///
/// Holds the MAP estimates of all model parameters after
/// [`TdhModel::fit`] / [`TruthDiscovery::infer`]:
/// `φ_s` per source, `ψ_w` per worker and `μ_o` per object, plus the cached
/// M-step numerators `N_{o,v}` and denominators `D_o` the incremental EM
/// (§4.2) and the `UEAI` bound (Lemma 4.1) are built from.
#[derive(Debug, Clone)]
pub struct TdhModel {
    cfg: TdhConfig,
    /// `φ_s = (exact, generalized, wrong)` per source.
    pub(crate) phi: Vec<[f64; 3]>,
    /// `ψ_w = (exact, generalized, wrong)` per worker.
    pub(crate) psi: Vec<[f64; 3]>,
    /// `μ_o` per object, aligned with the candidate order of the fitted
    /// index.
    pub(crate) mu: Vec<Vec<f64>>,
    /// Cached Eq. 9 numerators `N_{o,v}`.
    pub(crate) n_ov: Vec<Vec<f64>>,
    /// Cached Eq. 9 denominators `D_o`.
    pub(crate) d_o: Vec<f64>,
    /// Fit diagnostics of the last run.
    pub(crate) last_fit: Option<em::FitReport>,
    /// Per-phase wall-clock timings of the last run.
    pub(crate) last_timings: Option<em::PhaseTimings>,
    /// Parameters of the previous fit, retained when
    /// [`TdhConfig::warm_start`] is on so the next [`TruthDiscovery::infer`]
    /// resumes from them instead of starting cold.
    pub(crate) prev: Option<WarmStart>,
    /// The flat tables of the last fit, retained (and incrementally
    /// refreshed) so [`TdhModel::fit_delta`] never re-flattens the whole
    /// corpus. `None` until the first full fit.
    pub(crate) flat_cache: Option<FlatObservations>,
    /// The last fit's final-iteration E-step `φ`/`ψ` sufficient statistics —
    /// exactly the accumulators the stored parameters were computed from.
    /// [`TdhModel::fit_delta`] subtracts a touched object's old claims from
    /// them and folds the regrown rows back in. `None` for unfitted and
    /// [`TdhModel::restore`]d models (no E-step ran), in which case the
    /// next refit must be full.
    pub(crate) acc_cache: Option<em::MergedAcc>,
    /// Cumulative touched fraction accepted by delta refits since the last
    /// full fit — the drift budget [`TdhModel::fit_delta`] spends before
    /// forcing a full refit. Reset to zero by every full fit.
    pub(crate) delta_debt: f64,
    /// Optional metrics registry. When set (see [`TdhModel::set_metrics`]),
    /// every fit records per-iteration E/M-step timings, flatten time,
    /// iteration counts and convergence facts into it — strictly after the
    /// EM pool scope, so instrumentation never perturbs the deterministic
    /// FP arithmetic.
    pub(crate) obs: Option<Arc<tdh_obs::Registry>>,
}

impl TdhModel {
    /// An unfitted model with the given configuration.
    pub fn new(cfg: TdhConfig) -> Self {
        TdhModel {
            cfg,
            phi: Vec::new(),
            psi: Vec::new(),
            mu: Vec::new(),
            n_ov: Vec::new(),
            d_o: Vec::new(),
            last_fit: None,
            last_timings: None,
            prev: None,
            flat_cache: None,
            acc_cache: None,
            delta_debt: 0.0,
            obs: None,
        }
    }

    /// The configuration this model runs with.
    pub fn config(&self) -> &TdhConfig {
        &self.cfg
    }

    /// Attach a metrics registry: subsequent fits record EM observability
    /// (`tdh_em_*` instrument families — per-iteration E/M-step and flatten
    /// timings, iteration histograms, warm/cold fit counters, objective
    /// delta) into it. Recording happens outside the EM kernels and never
    /// affects the fitted parameters or their determinism.
    pub fn set_metrics(&mut self, registry: Arc<tdh_obs::Registry>) {
        self.obs = Some(registry);
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<tdh_obs::Registry>> {
        self.obs.as_ref()
    }

    /// Convenience: build the observation index (sharded over the
    /// configured thread count), fit, and return the estimate.
    pub fn fit(&mut self, ds: &Dataset) -> TruthEstimate {
        let t0 = Instant::now();
        let idx = ObservationIndex::build_threaded(ds, par::effective_threads(self.cfg.n_threads));
        let index_build = t0.elapsed();
        let est = self.infer(ds, &idx);
        if let Some(t) = &mut self.last_timings {
            t.index_build = index_build;
        }
        est
    }

    /// [`TdhModel::fit`], but **warm-started**: EM is seeded from `warm`
    /// (typically the previous fit's [`TdhModel::warm_start_params`], or a
    /// snapshot's persisted parameters) instead of the cold prior/vote
    /// initialization. Sources, workers, objects and candidates absent from
    /// `warm` fall back to their cold initialization; `μ` mass is mapped by
    /// candidate value and renormalized only where the candidate set grew.
    ///
    /// On unchanged data this converges to the same truths and (within
    /// FP-tolerance) the same parameters as a cold fit — in far fewer
    /// iterations; see `FitReport::iterations` for the count.
    pub fn fit_from(&mut self, ds: &Dataset, warm: &WarmStart) -> TruthEstimate {
        let t0 = Instant::now();
        let idx = ObservationIndex::build_threaded(ds, par::effective_threads(self.cfg.n_threads));
        let index_build = t0.elapsed();
        let est = self.infer_from(ds, &idx, warm);
        if let Some(t) = &mut self.last_timings {
            t.index_build = index_build;
        }
        est
    }

    /// [`TdhModel::fit_from`] with a caller-supplied (already current)
    /// observation index.
    pub fn infer_from(
        &mut self,
        ds: &Dataset,
        idx: &ObservationIndex,
        warm: &WarmStart,
    ) -> TruthEstimate {
        let report = em::run_em(self, ds, idx, Some(warm));
        self.finish_estimate(idx, report)
    }

    /// Export the fitted parameters in the portable, candidate-value-keyed
    /// form [`TdhModel::fit_from`] and the `tdh-serve` snapshot store
    /// consume. `idx` must be the index the model was fitted against (it
    /// supplies the candidate values `μ` is aligned with). Returns `None`
    /// when the model's parameter shapes do not match `idx` — i.e. the
    /// model was never fitted, or was fitted against a different corpus.
    pub fn warm_start_params(&self, idx: &ObservationIndex) -> Option<WarmStart> {
        if self.mu.len() != idx.n_objects() || self.phi.len() != idx.n_sources() {
            return None;
        }
        let mu = self
            .mu
            .iter()
            .zip(idx.views())
            .map(|(mu, view)| {
                if mu.len() != view.n_candidates() {
                    return None;
                }
                Some(
                    view.candidates
                        .iter()
                        .zip(mu)
                        .map(|(&c, &m)| (c, m))
                        .collect(),
                )
            })
            .collect::<Option<Vec<_>>>()?;
        Some(WarmStart {
            phi: self.phi.clone(),
            psi: self.psi.clone(),
            mu,
        })
    }

    /// Reconstruct a fitted model from persisted parameters without running
    /// EM: `phi`/`psi`/`mu` as exported by a previous fit, aligned with
    /// `idx` (the index built from the same dataset the parameters were
    /// fitted on). The cached incremental-EM statistics (`N_{o,v}`, `D_o`)
    /// are rebuilt from the Eq. (9) identities `D_o = |S_o| + |W_o| +
    /// |V_o|(γ−1)` and `N_{o,v} = μ_{o,v} · D_o`, so
    /// [`TdhModel::posterior_given_answer`] works immediately. The restored
    /// model carries no [`TdhModel::fit_report`] (no EM ran), and its next
    /// [`TruthDiscovery::infer`] warm-starts from the restored parameters
    /// when [`TdhConfig::warm_start`] is on.
    ///
    /// # Panics
    /// Panics if the parameter shapes do not match `idx` (callers such as
    /// the `tdh-serve` snapshot loader validate shapes while parsing).
    pub fn restore(
        cfg: TdhConfig,
        idx: &ObservationIndex,
        phi: Vec<[f64; 3]>,
        psi: Vec<[f64; 3]>,
        mu: Vec<Vec<f64>>,
    ) -> TdhModel {
        assert_eq!(
            phi.len(),
            idx.n_sources(),
            "φ table must cover every source"
        );
        assert_eq!(
            psi.len(),
            idx.n_workers(),
            "ψ table must cover every worker"
        );
        assert_eq!(mu.len(), idx.n_objects(), "μ table must cover every object");
        let mut n_ov = Vec::with_capacity(idx.n_objects());
        let mut d_o = Vec::with_capacity(idx.n_objects());
        for (m, view) in mu.iter().zip(idx.views()) {
            let k = view.n_candidates();
            assert_eq!(m.len(), k, "μ row must match the candidate set");
            if k == 0 {
                n_ov.push(Vec::new());
                d_o.push(0.0);
                continue;
            }
            let evidence = (view.sources.len() + view.workers.len()) as f64;
            let d = evidence + k as f64 * (cfg.gamma - 1.0);
            n_ov.push(m.iter().map(|x| x * d).collect());
            d_o.push(d);
        }
        let mut model = TdhModel {
            cfg,
            phi,
            psi,
            mu,
            n_ov,
            d_o,
            last_fit: None,
            last_timings: None,
            prev: None,
            flat_cache: None,
            acc_cache: None,
            delta_debt: 0.0,
            obs: None,
        };
        model.prev = model.warm_start_params(idx);
        model
    }

    /// Finalize one EM run: record the report, retain the parameters for
    /// the next warm start, and assemble the estimate.
    fn finish_estimate(&mut self, idx: &ObservationIndex, report: em::FitReport) -> TruthEstimate {
        self.last_fit = Some(report);
        self.prev = if self.cfg.warm_start {
            self.warm_start_params(idx)
        } else {
            None
        };
        let truths = self
            .mu
            .iter()
            .enumerate()
            .map(|(o, mu)| argmax(mu).map(|i| idx.view(ObjectId::from_index(o)).candidates[i]))
            .collect();
        TruthEstimate {
            truths,
            confidences: self.mu.clone(),
        }
    }

    /// `true` when the next [`TruthDiscovery::infer`] will seed EM from
    /// previous parameters (warm starts are enabled and a previous fit or
    /// [`TdhModel::restore`] left parameters behind).
    pub fn has_warm_start(&self) -> bool {
        self.cfg.warm_start && self.prev.is_some()
    }

    /// The fitted `φ` table, one row per source.
    pub fn phi_table(&self) -> &[[f64; 3]] {
        &self.phi
    }

    /// The fitted `ψ` table, one row per worker.
    pub fn psi_table(&self) -> &[[f64; 3]] {
        &self.psi
    }

    /// The fitted `μ` table, one row per object (aligned with the fitted
    /// index's candidate order).
    pub fn mu_table(&self) -> &[Vec<f64>] {
        &self.mu
    }

    /// `φ_s` for source `s` (after fitting).
    pub fn phi(&self, s: tdh_data::SourceId) -> [f64; 3] {
        self.phi[s.index()]
    }

    /// `ψ_w` for worker `w` (after fitting); the prior mean for workers the
    /// model has not seen answers from.
    pub fn psi(&self, w: WorkerId) -> [f64; 3] {
        self.psi
            .get(w.index())
            .copied()
            .unwrap_or_else(|| prior_mean(&self.cfg.beta))
    }

    /// Fit diagnostics of the last [`TdhModel::fit`] run.
    pub fn fit_report(&self) -> Option<&em::FitReport> {
        self.last_fit.as_ref()
    }

    /// Per-phase wall-clock timings (index build / E-step / M-step) of the
    /// last [`TdhModel::fit`] or `infer` run; the bench `scaling` scenario
    /// reports these per thread count. `index_build` is zero when the caller
    /// supplied a prebuilt index via `infer`.
    pub fn phase_timings(&self) -> Option<em::PhaseTimings> {
        self.last_timings
    }

    /// `P(v_o^s = c | v*_o = t, φ_s)` — Eq. (1) for objects in `O_H`,
    /// Eq. (2) otherwise. `c` and `t` are candidate indices into `view`.
    ///
    /// The EM hot path uses the flat-view mirror `em::flat_source_likelihood`;
    /// this view-based form is the reference it is pinned against (the
    /// `flat_likelihoods_match_view_likelihoods` test asserts exact equality).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn source_likelihood_cfg(
        view: &ObjectView,
        phi: &[f64; 3],
        c: u32,
        t: u32,
        flags: AblationFlags,
    ) -> f64 {
        let k = view.n_candidates();
        if view.in_oh && flags.hierarchy_aware {
            if c == t {
                phi[0]
            } else if view.ancestors[t as usize].contains(&c) {
                phi[1] / view.ancestors[t as usize].len() as f64
            } else {
                // `c` is wrong for truth `t`; the wrong set is non-empty
                // because `c` belongs to it.
                phi[2] / view.n_wrong(t) as f64
            }
        } else if c == t {
            phi[0] + phi[1]
        } else {
            phi[2] / (k - 1) as f64
        }
    }

    /// [`TdhModel::source_likelihood_cfg`] with the full (published) model.
    #[cfg(test)]
    pub(crate) fn source_likelihood(view: &ObjectView, phi: &[f64; 3], c: u32, t: u32) -> f64 {
        Self::source_likelihood_cfg(view, phi, c, t, AblationFlags::default())
    }

    /// `P(v_o^w = c | v*_o = t, ψ_w)` — Eq. (3) for objects in `O_H`,
    /// Eq. (4) otherwise.
    pub(crate) fn worker_likelihood_cfg(
        view: &ObjectView,
        psi: &[f64; 3],
        c: u32,
        t: u32,
        flags: AblationFlags,
    ) -> f64 {
        if view.in_oh && flags.hierarchy_aware {
            if c == t {
                psi[0]
            } else if view.ancestors[t as usize].contains(&c) {
                let pop = if flags.worker_popularity {
                    view.pop2(t, c)
                } else {
                    1.0 / view.ancestors[t as usize].len() as f64
                };
                psi[1] * pop
            } else {
                let pop = if flags.worker_popularity {
                    view.pop3(t, c)
                } else {
                    1.0 / view.n_wrong(t).max(1) as f64
                };
                psi[2] * pop
            }
        } else if c == t {
            psi[0] + psi[1]
        } else {
            let pop = if !flags.worker_popularity {
                1.0 / (view.n_candidates() - 1).max(1) as f64
            } else if view.in_oh {
                // Hierarchy-unaware ablation on a hierarchical object:
                // popularity among all non-truth claims (no Go carve-out).
                let total: u32 = view.source_count.iter().sum();
                let denom = total - view.source_count[t as usize];
                if denom == 0 {
                    1.0 / (view.n_candidates() - 1).max(1) as f64
                } else {
                    f64::from(view.source_count[c as usize]) / f64::from(denom)
                }
            } else {
                view.pop3(t, c)
            };
            psi[2] * pop
        }
    }

    /// [`TdhModel::worker_likelihood_cfg`] with the full (published) model.
    #[cfg(test)]
    pub(crate) fn worker_likelihood(view: &ObjectView, psi: &[f64; 3], c: u32, t: u32) -> f64 {
        Self::worker_likelihood_cfg(view, psi, c, t, AblationFlags::default())
    }

    /// Eq. (16)–(18): the conditional confidence `μ_{o,·|v_o^w = c}` via one
    /// incremental EM step over the cached `N_{o,v}` / `D_o`.
    pub(crate) fn incremental_posterior(
        &self,
        idx: &ObservationIndex,
        o: ObjectId,
        w: WorkerId,
        c: u32,
    ) -> Vec<f64> {
        let view = idx.view(o);
        let mu = &self.mu[o.index()];
        let psi = self.psi(w);
        // Eq. (16): f^v_{o,w|v'} — posterior over truths given the one new
        // answer under current parameters.
        let mut f: Vec<f64> = (0..view.n_candidates())
            .map(|t| {
                Self::worker_likelihood_cfg(view, &psi, c, t as u32, self.cfg.ablation) * mu[t]
            })
            .collect();
        let z: f64 = f.iter().sum();
        if z > 0.0 {
            for x in &mut f {
                *x /= z;
            }
        } else {
            // Degenerate likelihood: fall back to the prior confidence.
            f.copy_from_slice(mu);
        }
        // Eq. (17)/(18): fold the new fractional count into the cached
        // M-step statistics.
        let n = &self.n_ov[o.index()];
        let d = self.d_o[o.index()];
        (0..view.n_candidates())
            .map(|v| (n[v] + f[v]) / (d + 1.0))
            .collect()
    }
}

/// Mean of a Dirichlet prior.
pub(crate) fn prior_mean(alpha: &[f64; 3]) -> [f64; 3] {
    let s: f64 = alpha.iter().sum();
    [alpha[0] / s, alpha[1] / s, alpha[2] / s]
}

impl TruthDiscovery for TdhModel {
    fn name(&self) -> &'static str {
        "TDH"
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        // A refit resumes from the previous fit's parameters when warm
        // starts are on; the first fit of a model is always cold.
        let warm = if self.cfg.warm_start {
            self.prev.take()
        } else {
            None
        };
        let report = em::run_em(self, ds, idx, warm.as_ref());
        self.finish_estimate(idx, report)
    }
}

impl ProbabilisticCrowdModel for TdhModel {
    fn confidence(&self, o: ObjectId) -> &[f64] {
        &self.mu[o.index()]
    }

    fn worker_exact_prob(&self, w: WorkerId) -> f64 {
        self.psi(w)[0]
    }

    fn answer_likelihood(&self, idx: &ObservationIndex, o: ObjectId, w: WorkerId, c: u32) -> f64 {
        let view = idx.view(o);
        let psi = self.psi(w);
        let mu = &self.mu[o.index()];
        (0..view.n_candidates())
            .map(|t| {
                Self::worker_likelihood_cfg(view, &psi, c, t as u32, self.cfg.ablation) * mu[t]
            })
            .sum()
    }

    fn posterior_given_answer(
        &self,
        idx: &ObservationIndex,
        o: ObjectId,
        w: WorkerId,
        c: u32,
    ) -> Vec<f64> {
        self.incremental_posterior(idx, o, w, c)
    }

    fn evidence_weight(&self, o: ObjectId) -> f64 {
        self.d_o[o.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    /// Statue-of-Liberty fixture: candidates {NY, Liberty Island, LA} with
    /// NY an ancestor of Liberty Island.
    fn fixture() -> (Dataset, ObservationIndex, ObjectId) {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("sol");
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let s3 = ds.intern_source("s3");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let la = ds.hierarchy().node_by_name("LA").unwrap();
        ds.add_record(o, s1, ny);
        ds.add_record(o, s2, li);
        ds.add_record(o, s3, la);
        let idx = ObservationIndex::build(&ds);
        (ds, idx, o)
    }

    #[test]
    fn source_likelihood_sums_to_one_over_claims() {
        let (_, idx, o) = fixture();
        let view = idx.view(o);
        let phi = [0.6, 0.3, 0.1];
        for t in 0..view.n_candidates() as u32 {
            let total: f64 = (0..view.n_candidates() as u32)
                .map(|c| TdhModel::source_likelihood(view, &phi, c, t))
                .sum();
            // Truths with no candidate ancestors leak the φ2 mass (the
            // paper's Eq. 1 does not renormalise it), so the total is either
            // 1 or 1 − φ2.
            let expected = if view.ancestors[t as usize].is_empty() {
                1.0 - phi[1]
            } else {
                1.0
            };
            assert!(
                (total - expected).abs() < 1e-12,
                "t={t}: claim-likelihood total {total}, expected {expected}"
            );
        }
    }

    #[test]
    fn worker_likelihood_sums_to_one_over_claims() {
        let (_, idx, o) = fixture();
        let view = idx.view(o);
        let psi = [0.5, 0.2, 0.3];
        for t in 0..view.n_candidates() as u32 {
            let total: f64 = (0..view.n_candidates() as u32)
                .map(|c| TdhModel::worker_likelihood(view, &psi, c, t))
                .sum();
            let expected = if view.ancestors[t as usize].is_empty() {
                1.0 - psi[1]
            } else {
                1.0
            };
            assert!(
                (total - expected).abs() < 1e-12,
                "t={t}: total {total}, expected {expected}"
            );
        }
    }

    #[test]
    fn generalized_claim_splits_phi2_uniformly() {
        let (ds, idx, o) = fixture();
        let view = idx.view(o);
        let phi = [0.6, 0.3, 0.1];
        let ny = view
            .cand_index(ds.hierarchy().node_by_name("NY").unwrap())
            .unwrap();
        let li = view
            .cand_index(ds.hierarchy().node_by_name("Liberty Island").unwrap())
            .unwrap();
        // Claim NY when truth is Liberty Island: |Go(LI)| = 1.
        assert_eq!(TdhModel::source_likelihood(view, &phi, ny, li), 0.3);
        // Exact claim.
        assert_eq!(TdhModel::source_likelihood(view, &phi, li, li), 0.6);
        // Wrong claim (LA for truth LI): one wrong candidate.
        let la = view
            .cand_index(ds.hierarchy().node_by_name("LA").unwrap())
            .unwrap();
        assert_eq!(TdhModel::source_likelihood(view, &phi, la, li), 0.1);
        // Descendant claim counts as wrong: claiming LI when truth is NY,
        // with two wrong candidates {LI, LA}.
        assert_eq!(TdhModel::source_likelihood(view, &phi, li, ny), 0.05);
    }

    #[test]
    fn non_oh_objects_merge_exact_and_generalized() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["UK", "London"]);
        b.add_path(&["UK", "Manchester"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("big-ben");
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let lon = ds.hierarchy().node_by_name("London").unwrap();
        let man = ds.hierarchy().node_by_name("Manchester").unwrap();
        ds.add_record(o, s1, lon);
        ds.add_record(o, s2, man);
        let idx = ObservationIndex::build(&ds);
        let view = idx.view(o);
        assert!(!view.in_oh);
        let phi = [0.6, 0.3, 0.1];
        let c_lon = view.cand_index(lon).unwrap();
        let c_man = view.cand_index(man).unwrap();
        // Eq. (2): exact = φ1 + φ2, wrong = φ3 / (|Vo| − 1).
        assert!((TdhModel::source_likelihood(view, &phi, c_lon, c_lon) - 0.9).abs() < 1e-12);
        assert!((TdhModel::source_likelihood(view, &phi, c_man, c_lon) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn prior_mean_normalises() {
        let m = prior_mean(&[3.0, 3.0, 2.0]);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((m[0] - 0.375).abs() < 1e-12);
    }
}
