//! Numeric truth discovery via the implicit rounding hierarchy (§3.2).
//!
//! Numeric web data carries an implicit hierarchy: `605.196 km²` generalizes
//! to `605.2` and `605` through significant-figure rounding. Instead of
//! averaging claims (sensitive to outliers — the failure mode of MEAN and
//! CATD in Table 6), TDH selects the most probable *candidate value*, so a
//! single `6.0e8` scrape error cannot drag the estimate.
//!
//! [`NumericTdh`] lifts a [`NumericDataset`] into a categorical [`Dataset`]
//! whose hierarchy is the disjoint union of each object's rounding lattice
//! (per-object subtrees under a common root), runs the ordinary TDH EM —
//! sharing source trustworthiness `φ_s` across objects, exactly as in the
//! categorical case — and maps the winning candidates back to numbers.

use std::collections::HashMap;

use tdh_data::{Dataset, NumericDataset, ObservationIndex};
use tdh_hierarchy::numeric::{canonical, NumericHierarchy};
use tdh_hierarchy::{HierarchyBuilder, NodeId};

use crate::model::{TdhConfig, TdhModel};
use crate::traits::TruthDiscovery;

/// TDH over numeric claims.
#[derive(Debug, Clone)]
pub struct NumericTdh {
    cfg: TdhConfig,
}

impl Default for NumericTdh {
    fn default() -> Self {
        NumericTdh {
            cfg: TdhConfig::default(),
        }
    }
}

impl NumericTdh {
    /// A numeric TDH runner with the given EM configuration.
    pub fn new(cfg: TdhConfig) -> Self {
        NumericTdh { cfg }
    }

    /// Infer the most probable numeric value per object. Objects with no
    /// claims yield `None`.
    pub fn infer(&mut self, ds: &NumericDataset) -> Vec<Option<f64>> {
        let (cat, value_of) = lift_to_categorical(ds);
        let mut model = TdhModel::new(self.cfg);
        let idx = ObservationIndex::build_threaded(
            &cat,
            crate::par::effective_threads(self.cfg.n_threads),
        );
        let est = model.infer(&cat, &idx);
        est.truths
            .iter()
            .map(|t| t.map(|node| value_of[&node]))
            .collect()
    }
}

/// Lift numeric claims into a categorical dataset over the union of
/// per-object rounding lattices. Returns the dataset and the node → value
/// mapping.
fn lift_to_categorical(ds: &NumericDataset) -> (Dataset, HashMap<NodeId, f64>) {
    let by_object = ds.claims_by_object();
    let mut builder = HierarchyBuilder::new();
    let mut value_of: HashMap<NodeId, f64> = HashMap::new();
    // Per object: node in the object's lattice → node in the global tree.
    let mut embedded: Vec<HashMap<NodeId, NodeId>> = Vec::with_capacity(ds.n_objects());

    for (oi, claims) in by_object.iter().enumerate() {
        let values: Vec<f64> = claims.iter().map(|&(_, v)| v).collect();
        let mut map = HashMap::new();
        if !values.is_empty() {
            let (nh, _) = NumericHierarchy::build(&values);
            let h = nh.hierarchy();
            map.insert(NodeId::ROOT, NodeId::ROOT);
            // Builder order guarantees parents precede children.
            for node in h.nodes().skip(1) {
                let parent = map[&h.parent(node)];
                let name = format!("o{oi}:{}", canonical(nh.value(node)));
                let global = builder
                    .add_child(parent, &name)
                    .expect("object-prefixed names are unique");
                map.insert(node, global);
                value_of.insert(global, nh.value(node));
            }
            // Re-key by value lookup below via nh; store lattice for claims.
            embedded.push(
                values
                    .iter()
                    .map(|&v| {
                        let local = nh.node_of(v).expect("claimed value is in its lattice");
                        (local, map[&local])
                    })
                    .collect(),
            );
        } else {
            embedded.push(map);
        }
    }

    let mut cat = Dataset::new(builder.build());
    let objects: Vec<_> = (0..ds.n_objects())
        .map(|i| cat.intern_object(&format!("num-{i}")))
        .collect();
    let sources: Vec<_> = (0..ds.n_sources())
        .map(|i| cat.intern_source(&format!("src-{i}")))
        .collect();

    // Re-derive each claim's global node. `embedded[oi]` maps local node →
    // global node, but we stored it keyed by local node id; recompute the
    // local node per claim through a fresh lattice to stay allocation-light.
    for (oi, claims) in by_object.iter().enumerate() {
        if claims.is_empty() {
            continue;
        }
        let values: Vec<f64> = claims.iter().map(|&(_, v)| v).collect();
        let (nh, per_claim) = NumericHierarchy::build(&values);
        let _ = nh;
        for (&(s, _), local) in claims.iter().zip(per_claim) {
            let global = embedded[oi][&local];
            cat.add_record(objects[oi], sources[s.index()], global);
        }
    }
    (cat, value_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_data::{ObjectId, SourceId};

    /// Seoul-area example: three sources report the truth at different
    /// resolutions, one reports an outlier.
    fn seoul() -> NumericDataset {
        let mut ds = NumericDataset::new(1, 4);
        ds.add_claim(ObjectId(0), SourceId(0), 605.196);
        ds.add_claim(ObjectId(0), SourceId(1), 605.2);
        ds.add_claim(ObjectId(0), SourceId(2), 605.0);
        ds.add_claim(ObjectId(0), SourceId(3), 6.0e8);
        ds.set_gold(ObjectId(0), 605.196);
        ds
    }

    #[test]
    fn picks_most_specific_supported_value() {
        let est = NumericTdh::default().infer(&seoul());
        assert_eq!(est[0], Some(605.196));
    }

    #[test]
    fn robust_to_outliers_unlike_mean() {
        let ds = seoul();
        let est = NumericTdh::default().infer(&ds)[0].unwrap();
        let mean = (605.196 + 605.2 + 605.0 + 6.0e8) / 4.0;
        let gold = 605.196;
        assert!((est - gold).abs() < 1.0);
        assert!((mean - gold).abs() > 1e6, "MEAN is wrecked by the outlier");
    }

    #[test]
    fn shares_source_reliability_across_objects() {
        // Source 3 lies on every object; with enough objects TDH learns it.
        let mut ds = NumericDataset::new(20, 4);
        for i in 0..20 {
            let truth = 10.0 + i as f64;
            ds.set_gold(ObjectId(i as u32), truth);
            ds.add_claim(ObjectId(i as u32), SourceId(0), truth);
            ds.add_claim(ObjectId(i as u32), SourceId(1), truth);
            ds.add_claim(ObjectId(i as u32), SourceId(2), truth);
            ds.add_claim(ObjectId(i as u32), SourceId(3), truth + 3.0);
        }
        let est = NumericTdh::default().infer(&ds);
        for i in 0..20 {
            assert_eq!(est[i], ds.gold(ObjectId(i as u32)));
        }
    }

    #[test]
    fn empty_objects_yield_none() {
        let mut ds = NumericDataset::new(2, 1);
        ds.add_claim(ObjectId(0), SourceId(0), 1.5);
        let est = NumericTdh::default().infer(&ds);
        assert_eq!(est[0], Some(1.5));
        assert_eq!(est[1], None);
    }

    #[test]
    fn duplicate_claims_reinforce() {
        let mut ds = NumericDataset::new(1, 5);
        for s in 0..4 {
            ds.add_claim(ObjectId(0), SourceId(s), 42.0);
        }
        ds.add_claim(ObjectId(0), SourceId(4), 17.0);
        let est = NumericTdh::default().infer(&ds);
        assert_eq!(est[0], Some(42.0));
    }
}
