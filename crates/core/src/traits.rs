//! Workspace-wide abstractions: inference algorithms, crowd models and task
//! assigners.

use tdh_data::{Dataset, ObjectId, ObservationIndex, WorkerId};
use tdh_hierarchy::NodeId;

/// The output of a truth-inference run.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthEstimate {
    /// Estimated truth per object (`None` for objects without candidates).
    pub truths: Vec<Option<NodeId>>,
    /// Per-object confidence distribution over the object's candidate
    /// values, aligned with `ObjectView::candidates`. Algorithms without a
    /// probabilistic interpretation still emit a normalised score vector so
    /// that uncertainty-based task assignment (ME) can consume any of them.
    pub confidences: Vec<Vec<f64>>,
}

impl TruthEstimate {
    /// The estimate with the highest confidence per object, derived from
    /// `confidences`.
    pub fn from_confidences(idx: &ObservationIndex, confidences: Vec<Vec<f64>>) -> Self {
        let truths = confidences
            .iter()
            .enumerate()
            .map(|(o, mu)| argmax(mu).map(|i| idx.view(ObjectId::from_index(o)).candidates[i]))
            .collect();
        TruthEstimate {
            truths,
            confidences,
        }
    }
}

/// Index of the maximum element (first on ties); `None` for empty slices.
pub(crate) fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if best.map_or(true, |(_, b)| x > b) {
            best = Some((i, x));
        }
    }
    best.map(|(i, _)| i)
}

/// A truth-inference algorithm: fits itself to the records and answers and
/// produces a [`TruthEstimate`].
///
/// Implementations are re-run from scratch (or warm-started, at their
/// discretion) each crowdsourcing round — the paper's loop alternates full
/// inference with task assignment.
pub trait TruthDiscovery {
    /// Short algorithm name as used in the paper's tables ("TDH", "VOTE", …).
    fn name(&self) -> &'static str;

    /// Run inference over the dataset as indexed by `idx`.
    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate;
}

/// A fitted probabilistic model that can answer the questions task
/// assignment asks: current confidences, worker quality, the likelihood of
/// a hypothetical answer, and the posterior confidence after it.
///
/// [`crate::TdhModel`] answers the posterior question with the paper's
/// incremental EM; baseline models answer with a single Bayes update (which
/// is exactly what QASCA does).
pub trait ProbabilisticCrowdModel: TruthDiscovery {
    /// Current confidence distribution `μ_o` (aligned with the candidate
    /// order of the index the model was last fitted with).
    fn confidence(&self, o: ObjectId) -> &[f64];

    /// The probability that worker `w` answers the exact truth (TDH's
    /// `ψ_{w,1}`); used to prioritise reliable workers in Algorithm 1.
    fn worker_exact_prob(&self, w: WorkerId) -> f64;

    /// `P(v_o^w = c | ψ_w, μ_o)` — the marginal likelihood that worker `w`
    /// would answer candidate `c` for object `o` (Eq. 6).
    fn answer_likelihood(&self, idx: &ObservationIndex, o: ObjectId, w: WorkerId, c: u32) -> f64;

    /// The conditional confidence `μ_{o,·|v_o^w = c}` after a hypothetical
    /// answer `c` from worker `w`.
    fn posterior_given_answer(
        &self,
        idx: &ObservationIndex,
        o: ObjectId,
        w: WorkerId,
        c: u32,
    ) -> Vec<f64>;

    /// The evidence mass `D_o` behind `μ_o` (the paper's M-step denominator:
    /// `|S_o| + |W_o| + Σ(γ−1)`). Drives the `1/(D_o+1)` damping in the
    /// `UEAI` bound — objects buried in evidence are barely moved by one
    /// more answer.
    fn evidence_weight(&self, o: ObjectId) -> f64;
}

/// One worker's batch of assigned objects for the next round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The worker the batch goes to.
    pub worker: WorkerId,
    /// Objects to ask about, most valuable first.
    pub objects: Vec<ObjectId>,
}

/// A task-assignment policy: selects the top-`k` objects for each available
/// worker.
pub trait TaskAssigner {
    /// Short name as used in the paper ("EAI", "QASCA", "ME", "MB").
    fn name(&self) -> &'static str;

    /// Choose up to `k` objects per worker. Implementations must not assign
    /// an object to a worker who already answered it.
    fn assign(
        &mut self,
        model: &dyn ProbabilisticCrowdModel,
        ds: &Dataset,
        idx: &ObservationIndex,
        workers: &[WorkerId],
        k: usize,
    ) -> Vec<Assignment>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0]), Some(0));
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), Some(1));
        // Ties break to the first index.
        assert_eq!(argmax(&[0.5, 0.5]), Some(0));
        assert_eq!(argmax(&[f64::NEG_INFINITY, 0.0]), Some(1));
    }
}
