//! EAI task assignment (paper §4): the quality measure (Eq. 14–15), the
//! `UEAI` upper bound (Lemma 4.1) and the heap-based Algorithm 1.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tdh_data::{Dataset, ObjectId, ObservationIndex, WorkerId};

use crate::traits::{Assignment, ProbabilisticCrowdModel, TaskAssigner};

/// Total-ordered f64 for use inside heaps (scores are never NaN by
/// construction, but `total_cmp` keeps the ordering well defined anyway).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Score(f64);

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// `EAI(w, o)` — the Expected Accuracy Improvement of asking worker `w`
/// about object `o` (Eq. 14):
///
/// ```text
/// EAI(w,o) = ( E[max_v μ_{o,v|w}] − max_v μ_{o,v} ) / |O|
/// ```
///
/// where the expectation runs over the worker's possible answers weighted by
/// their marginal likelihood (Eq. 15), and the conditional confidence comes
/// from the model's incremental posterior (for TDH, the incremental EM of
/// §4.2 — which is what makes the estimate sensitive to how much evidence
/// the object already has).
pub fn eai(
    model: &dyn ProbabilisticCrowdModel,
    idx: &ObservationIndex,
    o: ObjectId,
    w: WorkerId,
    n_objects: usize,
) -> f64 {
    let view = idx.view(o);
    let k = view.n_candidates();
    if k < 2 {
        return 0.0; // a single (or no) candidate cannot be improved
    }
    let mu = model.confidence(o);
    let cur_max = mu.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut expected = 0.0;
    let mut total_p = 0.0;
    for c in 0..k as u32 {
        let p = model.answer_likelihood(idx, o, w, c);
        if p <= 0.0 {
            continue;
        }
        let post = model.posterior_given_answer(idx, o, w, c);
        let m = post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        expected += p * m;
        total_p += p;
    }
    if total_p <= 0.0 {
        return 0.0;
    }
    // The answer distribution is normalised before taking the expectation:
    // TDH's claim likelihood (Eq. 1–4) deliberately leaks the generalization
    // mass ψ2 for truths without candidate ancestors, and without
    // renormalisation that leak would deflate exactly the hierarchy-rich
    // objects EAI should prioritise.
    (expected / total_p - cur_max) / n_objects as f64
}

/// `UEAI(o)` — Lemma 4.1's worker-independent upper bound on `EAI(w, o)`:
///
/// ```text
/// UEAI(o) = (1 − max_v μ_{o,v}) / (|O| · (D_o + 1))
/// ```
///
/// The `D_o + 1` denominator is the paper's key observation: objects that
/// already carry a lot of evidence cannot be moved much by one more answer.
pub fn ueai(model: &dyn ProbabilisticCrowdModel, o: ObjectId, n_objects: usize) -> f64 {
    let mu = model.confidence(o);
    if mu.len() < 2 {
        return 0.0;
    }
    let max = mu.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (1.0 - max) / (n_objects as f64 * (model.evidence_weight(o) + 1.0))
}

/// The paper's Algorithm 1: assign the best `k` objects to each worker,
/// scanning objects in decreasing `UEAI` order with per-worker min-heaps and
/// stopping as soon as no remaining object's bound can beat any heap
/// minimum.
#[derive(Debug, Default, Clone)]
pub struct EaiAssigner {
    /// Count of `EAI` evaluations performed in the last call (exposed for
    /// the Figure 13 pruning-effectiveness experiment).
    pub eai_evaluations: usize,
}

impl EaiAssigner {
    /// Fresh assigner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TaskAssigner for EaiAssigner {
    fn name(&self) -> &'static str {
        "EAI"
    }

    fn assign(
        &mut self,
        model: &dyn ProbabilisticCrowdModel,
        _ds: &Dataset,
        idx: &ObservationIndex,
        workers: &[WorkerId],
        k: usize,
    ) -> Vec<Assignment> {
        self.eai_evaluations = 0;
        let n_objects = idx.n_objects();
        if workers.is_empty() || k == 0 || n_objects == 0 {
            return workers
                .iter()
                .map(|&w| Assignment {
                    worker: w,
                    objects: Vec::new(),
                })
                .collect();
        }

        // Lines 1–2: UEAI for every object, max-heap over it.
        let ueai_of: Vec<f64> = (0..n_objects)
            .map(|oi| ueai(model, ObjectId::from_index(oi), n_objects))
            .collect();
        let mut hub: BinaryHeap<(Score, ObjectId)> = (0..n_objects)
            .filter(|&oi| ueai_of[oi] > 0.0)
            .map(|oi| (Score(ueai_of[oi]), ObjectId::from_index(oi)))
            .collect();

        // Line 3: workers in decreasing ψ_{w,1}.
        let mut order: Vec<WorkerId> = workers.to_vec();
        order.sort_by(|&a, &b| {
            model
                .worker_exact_prob(b)
                .total_cmp(&model.worker_exact_prob(a))
        });

        // Lines 4–5: per-worker min-heaps of (EAI, object).
        let mut heaps: Vec<BinaryHeap<Reverse<(Score, ObjectId)>>> =
            vec![BinaryHeap::new(); order.len()];

        // Lines 6–17.
        while let Some((Score(ub), o)) = hub.pop() {
            // Line 8: all heaps full and no heap minimum beatable → stop.
            let all_full = heaps.iter().all(|h| h.len() >= k);
            if all_full {
                let beatable = heaps
                    .iter()
                    .any(|h| h.peek().map_or(true, |Reverse((Score(m), _))| *m < ub));
                if !beatable {
                    break;
                }
            }
            // Lines 10–17: offer the object to workers in ψ order; an
            // eviction passes the evicted object on to the next worker.
            let mut cur = o;
            for (wi, &w) in order.iter().enumerate() {
                if idx.has_answered(w, cur) {
                    continue;
                }
                let heap = &mut heaps[wi];
                let bound = ueai_of[cur.index()];
                if heap.len() >= k {
                    // Pruning: this object cannot beat the worker's current
                    // worst assignment.
                    if heap
                        .peek()
                        .is_some_and(|Reverse((Score(m), _))| *m >= bound)
                    {
                        continue;
                    }
                }
                self.eai_evaluations += 1;
                let score = eai(model, idx, cur, w, n_objects);
                heap.push(Reverse((Score(score), cur)));
                if heap.len() <= k {
                    break; // assigned without eviction
                }
                let Reverse((_, evicted)) = heap.pop().expect("heap non-empty");
                if evicted == cur {
                    continue; // didn't make the cut; try the next worker
                }
                cur = evicted; // pass the displaced object along
            }
        }

        // Emit batches, most valuable object first.
        order
            .iter()
            .zip(heaps)
            .map(|(&w, heap)| {
                let mut items: Vec<(Score, ObjectId)> =
                    heap.into_iter().map(|Reverse(x)| x).collect();
                items.sort_by(|a, b| b.0.cmp(&a.0));
                Assignment {
                    worker: w,
                    objects: items.into_iter().map(|(_, o)| o).collect(),
                }
            })
            .collect()
    }
}

/// EAI assignment *without* the `UEAI` filter: evaluates `EAI(w, o)` for
/// every feasible pair and then assigns greedily (each object to at most one
/// worker, `k` per worker). This is the "w/o filtering" arm of Figure 13;
/// it reaches the same assignment quality at a much higher cost. Returns the
/// batches together with the number of `EAI` evaluations performed.
pub fn assign_exhaustive(
    model: &dyn ProbabilisticCrowdModel,
    _ds: &Dataset,
    idx: &ObservationIndex,
    workers: &[WorkerId],
    k: usize,
) -> (Vec<Assignment>, usize) {
    let n_objects = idx.n_objects();
    let mut evaluations = 0usize;
    let mut scored: Vec<(Score, usize, ObjectId)> = Vec::new();
    for (wi, &w) in workers.iter().enumerate() {
        for oi in 0..n_objects {
            let o = ObjectId::from_index(oi);
            if idx.has_answered(w, o) || idx.view(o).n_candidates() < 2 {
                continue;
            }
            evaluations += 1;
            scored.push((Score(eai(model, idx, o, w, n_objects)), wi, o));
        }
    }
    scored.sort_by(|a, b| b.0.cmp(&a.0));
    let mut taken = vec![false; n_objects];
    let mut batches: Vec<Vec<ObjectId>> = vec![Vec::new(); workers.len()];
    for (_, wi, o) in scored {
        if taken[o.index()] || batches[wi].len() >= k {
            continue;
        }
        taken[o.index()] = true;
        batches[wi].push(o);
    }
    (
        workers
            .iter()
            .zip(batches)
            .map(|(&w, objects)| Assignment { worker: w, objects })
            .collect(),
        evaluations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{TdhConfig, TdhModel};
    use crate::traits::TruthDiscovery;
    use tdh_data::Dataset;
    use tdh_hierarchy::HierarchyBuilder;

    /// A corpus with both well-supported and contested objects.
    fn fitted() -> (Dataset, ObservationIndex, TdhModel) {
        let mut b = HierarchyBuilder::new();
        for c in 0..4 {
            for t in 0..4 {
                b.add_path(&[&format!("C{c}"), &format!("C{c}R"), &format!("C{c}T{t}")]);
            }
        }
        let mut ds = Dataset::new(b.build());
        let srcs: Vec<_> = (0..6).map(|i| ds.intern_source(&format!("s{i}"))).collect();
        for i in 0..30 {
            let o = ds.intern_object(&format!("o{i}"));
            let h = ds.hierarchy();
            let truth = h.node_by_name(&format!("C{}T{}", i % 4, i % 4)).unwrap();
            let wrong = h
                .node_by_name(&format!("C{}T{}", (i + 1) % 4, i % 4))
                .unwrap();
            ds.set_gold(o, truth);
            if i < 10 {
                // Contested: 1 vs 1.
                ds.add_record(o, srcs[0], truth);
                ds.add_record(o, srcs[1], wrong);
            } else {
                // Well supported: 5 vs 1.
                for s in &srcs[..5] {
                    ds.add_record(o, *s, truth);
                }
                ds.add_record(o, srcs[5], wrong);
            }
        }
        // Seed two workers with known behaviour.
        let w_good = ds.intern_worker("good");
        let w_bad = ds.intern_worker("bad");
        for i in 10..25 {
            let o = tdh_data::ObjectId(i);
            let truth = ds.gold(o).unwrap();
            ds.add_answer(o, w_good, truth);
            let idx = ObservationIndex::build(&ds);
            let wrong = idx.view(o).candidates.iter().copied().find(|&v| v != truth);
            ds.add_answer(o, w_bad, wrong.unwrap());
        }
        let idx = ObservationIndex::build(&ds);
        let mut model = TdhModel::new(TdhConfig::default());
        model.infer(&ds, &idx);
        (ds, idx, model)
    }

    #[test]
    fn lemma_4_1_bound_holds_everywhere() {
        let (ds, idx, model) = fitted();
        let n = idx.n_objects();
        for o in ds.objects() {
            let ub = ueai(&model, o, n);
            for w in ds.workers() {
                let score = eai(&model, &idx, o, w, n);
                assert!(
                    score <= ub + 1e-12,
                    "EAI({w:?},{o:?}) = {score} exceeds UEAI = {ub}"
                );
            }
        }
    }

    #[test]
    fn contested_objects_score_higher() {
        let (_, idx, model) = fitted();
        let n = idx.n_objects();
        let w = WorkerId(0);
        // Contested object 0 (1v1, few claims) vs buried object 25 (5v1).
        let contested = eai(&model, &idx, ObjectId(0), w, n);
        let buried = eai(&model, &idx, ObjectId(25), w, n);
        assert!(
            contested > buried,
            "contested {contested} should beat buried {buried}"
        );
    }

    #[test]
    fn assignment_respects_k_and_uniqueness() {
        let (ds, idx, model) = fitted();
        let workers: Vec<_> = ds.workers().collect();
        let mut assigner = EaiAssigner::new();
        let batches = assigner.assign(&model, &ds, &idx, &workers, 3);
        assert_eq!(batches.len(), workers.len());
        let mut seen = std::collections::HashSet::new();
        for b in &batches {
            assert!(b.objects.len() <= 3);
            for &o in &b.objects {
                assert!(seen.insert(o), "object {o:?} assigned twice");
                assert!(!idx.has_answered(b.worker, o));
            }
        }
        assert!(assigner.eai_evaluations > 0);
    }

    #[test]
    fn reliable_workers_served_first() {
        let (ds, idx, model) = fitted();
        let workers: Vec<_> = ds.workers().collect();
        // "good" answered truths, so ψ_{good,1} > ψ_{bad,1}.
        assert!(model.worker_exact_prob(WorkerId(0)) > model.worker_exact_prob(WorkerId(1)));
        let mut assigner = EaiAssigner::new();
        let batches = assigner.assign(&model, &ds, &idx, &workers, 5);
        // Batches come back in ψ order: first batch belongs to "good".
        assert_eq!(batches[0].worker, WorkerId(0));
    }

    #[test]
    fn pruned_matches_exhaustive_quality() {
        let (ds, idx, model) = fitted();
        let workers: Vec<_> = ds.workers().collect();
        let mut assigner = EaiAssigner::new();
        let pruned = assigner.assign(&model, &ds, &idx, &workers, 4);
        let pruned_evals = assigner.eai_evaluations;
        let (exhaustive, full_evals) = assign_exhaustive(&model, &ds, &idx, &workers, 4);
        let quality = |batches: &[Assignment]| -> f64 {
            batches
                .iter()
                .flat_map(|b| {
                    let idx = &idx;
                    let model = &model;
                    b.objects
                        .iter()
                        .map(move |&o| eai(model, idx, o, b.worker, idx.n_objects()))
                })
                .sum()
        };
        let (qp, qe) = (quality(&pruned), quality(&exhaustive));
        assert!(
            qp >= qe * 0.95 - 1e-12,
            "pruned quality {qp} vs exhaustive {qe}"
        );
        assert!(
            pruned_evals <= full_evals,
            "pruning must not evaluate more: {pruned_evals} vs {full_evals}"
        );
    }

    #[test]
    fn empty_inputs() {
        let (ds, idx, model) = fitted();
        let mut assigner = EaiAssigner::new();
        assert!(assigner.assign(&model, &ds, &idx, &[], 3).is_empty());
        let batches = assigner.assign(&model, &ds, &idx, &[WorkerId(0)], 0);
        assert!(batches[0].objects.is_empty());
    }
}
