//! Property tests for the log-scale histogram (vendored proptest subset).

use std::sync::Arc;

use proptest::collection;
use proptest::prelude::*;
use tdh_obs::{Histogram, N_BUCKETS};

proptest! {
    // Bucket boundaries are monotone and partition the u64 range: each
    // bucket's lower bound is its predecessor's upper bound plus one, and
    // every value falls inside the bounds of the bucket it indexes to.
    #[test]
    fn bucket_boundaries_are_monotone(value in 0u64..u64::MAX) {
        for i in 1..N_BUCKETS {
            let (prev_lo, prev_hi) = Histogram::bucket_bounds(i - 1);
            let (lo, hi) = Histogram::bucket_bounds(i);
            prop_assert!(prev_lo <= prev_hi);
            prop_assert_eq!(lo, prev_hi + 1);
            prop_assert!(lo <= hi);
        }
        let idx = Histogram::bucket_index(value);
        let (lo, hi) = Histogram::bucket_bounds(idx);
        prop_assert!(value >= lo && value <= hi);
    }

    // merge(a, b) is exactly equivalent to recording every observation into
    // a single histogram: identical buckets, sum, and count.
    #[test]
    fn merge_equals_recording_all_in_one(
        xs in collection::vec(0u64..1_000_000, 0..200),
        ys in collection::vec(0u64..1_000_000, 0..200),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for &v in &xs { a.record(v); all.record(v); }
        for &v in &ys { b.record(v); all.record(v); }
        a.merge(&b);
        prop_assert_eq!(a.snapshot(), all.snapshot());
    }

    // A quantile estimate always lies within the inclusive bounds of the
    // bucket holding the true rank-selected value.
    #[test]
    fn quantile_estimate_stays_in_its_bucket(
        xs in collection::vec(0u64..1_000_000, 1..300),
        q_millis in 0u64..1001,
    ) {
        let q = q_millis as f64 / 1000.0;
        let h = Histogram::new();
        for &v in &xs { h.record(v); }
        let est = h.quantile(q).expect("non-empty histogram");

        // The true value at the same rank the estimator targets.
        let mut xs = xs;
        xs.sort_unstable();
        let rank = (q * (xs.len() - 1) as f64).round() as usize;
        let truth = xs[rank];
        let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(truth));
        prop_assert!(est >= lo && est <= hi,
            "estimate {} outside bucket [{}, {}] of true value {}", est, lo, hi, truth);
    }

    // Quantiles are monotone in q.
    #[test]
    fn quantiles_are_monotone(xs in collection::vec(0u64..1_000_000, 1..300)) {
        let h = Histogram::new();
        for &v in &xs { h.record(v); }
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = h.quantile(q).expect("non-empty histogram");
            prop_assert!(est >= prev, "quantile({}) = {} < previous {}", q, est, prev);
            prev = est;
        }
    }
}

/// Concurrent recorders conserve the total count and sum: nothing is lost
/// or double-counted under contention.
#[test]
fn concurrent_records_conserve_totals() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS * PER_THREAD);
    // Sum of 0..N-1 over all threads.
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.sum, n * (n - 1) / 2);
}
