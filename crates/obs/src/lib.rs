//! Observability primitives for the TDH workspace.
//!
//! This crate is a deliberately small, `std`-only metrics core — no external
//! dependencies, no background threads, no `unsafe`. It exists so the serving
//! stack (`tdh-serve`) and the EM kernels (`tdh-core`) can answer
//! operational questions ("what is p99 TRUTH latency?", "how long do WAL
//! fsyncs take?", "is warm-start cutting iterations?") without re-running a
//! bench.
//!
//! # Instruments
//!
//! Three instrument kinds, all lock-free on the record path:
//!
//! * [`Counter`] — a monotonically increasing `u64` (relaxed `fetch_add`).
//! * [`Gauge`] — a settable `f64` stored as atomic bits (relaxed store).
//! * [`Histogram`] — a fixed-layout log-scale histogram: 65 power-of-two
//!   buckets covering the full `u64` range. Recording is one relaxed
//!   `fetch_add` per bucket plus two for the running sum/count; histograms
//!   from different shards [`merge`](Histogram::merge) exactly because every
//!   histogram shares the same bucket boundaries.
//!
//! Instruments live behind a [`Registry`] keyed by `(name, labels)`.
//! Registration (`registry.counter("tdh_requests_total", &[("command",
//! "TRUTH")])`) takes a mutex and returns an `Arc` handle; hot paths cache
//! the handle so steady-state cost is a few relaxed atomics per operation.
//!
//! # Exposition
//!
//! [`Registry::render`] produces Prometheus-style text exposition
//! (`# TYPE` comments, `name{label="v"} value` series, cumulative
//! `_bucket{le="..."}` / `_sum` / `_count` for histograms) terminated by a
//! `# EOF` line so it can be framed on a line-oriented wire protocol.
//! [`render_merged`] combines several registries into one exposition —
//! counters add, gauges add, histograms bucket-merge — which is how the
//! sharded router aggregates per-shard metrics into a single scrape.
//!
//! # Spans
//!
//! [`Span`] is a drop-guard that records its elapsed time (in microseconds)
//! into a histogram; the [`span!`] macro is sugar over a registry lookup:
//!
//! ```
//! use tdh_obs::Registry;
//! let reg = Registry::new();
//! {
//!     let _guard = tdh_obs::span!(reg, "e_step");
//!     // ... timed work ...
//! }
//! assert_eq!(reg.histogram("tdh_span_us", &[("name", "e_step")]).count(), 1);
//! ```
//!
//! # Event log
//!
//! [`log`] is a leveled, structured, line-oriented event log written to
//! stderr and gated by the `TDH_LOG` environment variable
//! (`TDH_LOG=info` or `TDH_LOG=wal=debug,refit=info`). When the filter is
//! unset the cost of a disabled [`log_event!`] call site is a single cached
//! load and compare.

mod counter;
mod expose;
mod histogram;
pub mod log;
mod registry;
mod span;

pub use counter::{Counter, Gauge};
pub use expose::{merge_samples, render_text, Sample, SampleValue};
pub use histogram::{Histogram, HistogramSnapshot, N_BUCKETS};
pub use log::Level;
pub use registry::{render_merged, Registry};
pub use span::Span;
