//! A registry of named + labeled instruments.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::counter::{Counter, Gauge};
use crate::expose::{merge_samples, render_text, Sample, SampleValue};
use crate::histogram::Histogram;

type Key = (String, Vec<(String, String)>);

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A threadsafe registry of instruments keyed by `(name, labels)`.
///
/// Registration (`counter` / `gauge` / `histogram`) takes an internal mutex
/// and returns an `Arc` handle to the (possibly pre-existing) instrument;
/// hot paths cache the handle so steady-state recording never touches the
/// registry lock. Label order does not matter — labels are sorted by key at
/// registration.
///
/// Re-registering an existing key with a *different* instrument kind is a
/// programming error and panics.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<HashMap<Key, Instrument>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.instruments.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "Registry({n} instruments)")
    }
}

impl Registry {
    /// Creates an empty registry behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        (name.to_string(), labels)
    }

    /// Returns the counter registered under `(name, labels)`, creating it on
    /// first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(Self::key(name, labels))
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("instrument {name} already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `(name, labels)`, creating it on
    /// first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(Self::key(name, labels))
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("instrument {name} already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `(name, labels)`, creating it
    /// on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(Self::key(name, labels))
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("instrument {name} already registered with a different kind"),
        }
    }

    /// Samples every registered instrument.
    pub fn snapshot(&self) -> Vec<Sample> {
        let map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<Sample> = map
            .iter()
            .map(|((name, labels), inst)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: match inst {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// Renders this registry as Prometheus-style text exposition.
    pub fn render(&self) -> String {
        render_text(&self.snapshot())
    }
}

/// Renders several registries as one merged exposition.
///
/// Same-keyed series combine across registries: counters add, gauges add,
/// histograms bucket-merge (see [`merge_samples`]). This is how the router
/// aggregates per-shard registries plus its own endpoint registry into a
/// single `METRICS` reply.
pub fn render_merged(registries: &[&Registry]) -> String {
    let merged = merge_samples(registries.iter().map(|r| r.snapshot()).collect());
    render_text(&merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_instrument() {
        let reg = Registry::new();
        let a = reg.counter("c", &[("x", "1"), ("y", "2")]);
        // Label order must not matter.
        let b = reg.counter("c", &[("y", "2"), ("x", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("c", &[]);
        let _ = reg.gauge("c", &[]);
    }

    #[test]
    fn merged_render_combines_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("hits", &[]).add(2);
        b.counter("hits", &[]).add(3);
        a.histogram("lat", &[]).record(4);
        b.histogram("lat", &[]).record(4);
        let text = render_merged(&[&a, &b]);
        assert!(text.contains("hits 5\n"));
        assert!(text.contains("lat_count 2\n"));
    }
}
