//! A leveled, structured event log gated by the `TDH_LOG` env filter.
//!
//! Events are single lines on stderr of the form:
//!
//! ```text
//! [INFO refit] published new state version=3 pending=0
//! ```
//!
//! Filtering follows a small subset of `env_logger` syntax: `TDH_LOG` is a
//! comma-separated list of either a bare level (`info`) setting the default,
//! or `target=level` pairs (`wal=debug,refit=trace`) overriding it for one
//! target. Unset or empty means everything is off. The filter is parsed once
//! per process; a disabled [`crate::log_event!`] call site costs one cached
//! load and a comparison.

use std::sync::OnceLock;

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Suspicious conditions the server survived.
    Warn = 2,
    /// High-level lifecycle events (publications, recoveries).
    Info = 3,
    /// Per-operation detail (batches, appends).
    Debug = 4,
    /// Everything, including per-item noise.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// A parsed `TDH_LOG` specification.
#[derive(Debug, Default)]
struct Filter {
    default: Option<Level>,
    targets: Vec<(String, Level)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => {
                    if let Some(level) = Level::parse(part) {
                        filter.default = Some(level);
                    }
                }
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        filter.targets.push((target.trim().to_string(), level));
                    }
                }
            }
        }
        filter
    }

    fn allows(&self, level: Level, target: &str) -> bool {
        let max = self
            .targets
            .iter()
            .find(|(t, _)| t == target)
            .map(|(_, l)| *l)
            .or(self.default);
        match max {
            Some(max) => level <= max,
            None => false,
        }
    }
}

fn global() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| Filter::parse(&std::env::var("TDH_LOG").unwrap_or_default()))
}

/// Returns whether an event at `level` for `target` would be emitted.
///
/// This is the fast path of a disabled call site: one `OnceLock` load plus a
/// (usually empty) target scan.
pub fn enabled(level: Level, target: &str) -> bool {
    global().allows(level, target)
}

/// Writes one event line to stderr. Prefer [`crate::log_event!`], which
/// checks [`enabled`] before formatting anything.
pub fn write_event(level: Level, target: &str, message: &str, fields: &[(&str, String)]) {
    use std::fmt::Write as _;
    let mut line = format!("[{} {}] {}", level.as_str(), target, message);
    for (k, v) in fields {
        let _ = write!(line, " {k}={v}");
    }
    eprintln!("{line}");
}

/// Emits a structured event if `TDH_LOG` enables it.
///
/// ```
/// use tdh_obs::Level;
/// tdh_obs::log_event!(Level::Info, "refit", "published", version = 3, pending = 0);
/// ```
///
/// Field values are formatted with `ToString` only when the event is
/// enabled; a disabled call site does no formatting or allocation.
#[macro_export]
macro_rules! log_event {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::log::enabled($level, $target) {
            $crate::log::write_event(
                $level,
                $target,
                &::std::string::ToString::to_string(&$msg),
                &[$((stringify!($key), ::std::string::ToString::to_string(&$value))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_sets_default() {
        let f = Filter::parse("info");
        assert!(f.allows(Level::Error, "wal"));
        assert!(f.allows(Level::Info, "wal"));
        assert!(!f.allows(Level::Debug, "wal"));
    }

    #[test]
    fn target_overrides_default() {
        let f = Filter::parse("warn,wal=trace");
        assert!(f.allows(Level::Trace, "wal"));
        assert!(!f.allows(Level::Info, "refit"));
        assert!(f.allows(Level::Warn, "refit"));
    }

    #[test]
    fn empty_spec_disables_everything() {
        let f = Filter::parse("");
        assert!(!f.allows(Level::Error, "wal"));
    }

    #[test]
    fn junk_tokens_are_ignored() {
        let f = Filter::parse("bogus,wal=nope,info");
        assert!(f.allows(Level::Info, "anything"));
        assert!(!f.allows(Level::Debug, "wal"));
    }
}
