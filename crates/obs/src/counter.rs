//! Scalar instruments: monotonic [`Counter`] and settable [`Gauge`].

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// All operations are single relaxed atomics; the counter is safe to share
/// across threads behind an `Arc` and never takes a lock.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64`, stored as atomic bits.
///
/// Gauges represent point-in-time quantities (population sizes, queue
/// depths, ages). [`set`](Gauge::set) is a single relaxed store;
/// [`add`](Gauge::add) is a CAS loop and intended for low-frequency updates.
///
/// When registries are merged (see [`crate::merge_samples`]) gauges are
/// summed, which is correct for population-style gauges split across shards
/// (objects per shard, pending claims per shard). Gauges whose sum is
/// meaningless across shards — uptime, publication age — must live in a
/// single endpoint-level registry that is never replicated per shard.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge (CAS loop; may be negative).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-0.5);
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
