//! Prometheus-style text exposition and cross-registry sample merging.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;

/// The value of one sampled series.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotonic counter value.
    Counter(u64),
    /// A point-in-time gauge value.
    Gauge(f64),
    /// A full histogram snapshot.
    Histogram(HistogramSnapshot),
}

impl SampleValue {
    fn kind(&self) -> &'static str {
        match self {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        }
    }
}

/// One sampled series: a metric name, its sorted label set, and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric family name, e.g. `tdh_requests_total`.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// Merges sample sets from several registries into one.
///
/// Series with identical `(name, labels)` combine: counters add, gauges add
/// (correct for population-style gauges split across shards; endpoint-only
/// gauges such as uptime must live in exactly one registry), histograms
/// bucket-merge. A kind mismatch between same-keyed series keeps the first
/// and drops the rest rather than producing a malformed family.
pub fn merge_samples(groups: Vec<Vec<Sample>>) -> Vec<Sample> {
    let mut merged: HashMap<(String, Vec<(String, String)>), Sample> = HashMap::new();
    for group in groups {
        for sample in group {
            let key = (sample.name.clone(), sample.labels.clone());
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, sample);
                }
                Some(existing) => match (&mut existing.value, sample.value) {
                    (SampleValue::Counter(a), SampleValue::Counter(b)) => *a += b,
                    (SampleValue::Gauge(a), SampleValue::Gauge(b)) => *a += b,
                    (SampleValue::Histogram(a), SampleValue::Histogram(b)) => a.merge(&b),
                    _ => {} // kind mismatch: keep the first occurrence
                },
            }
        }
    }
    let mut out: Vec<Sample> = merged.into_values().collect();
    out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    out
}

/// Renders samples as Prometheus-style text exposition.
///
/// Families are sorted by name, each preceded by one `# TYPE name kind`
/// comment. Histograms expand into cumulative `name_bucket{le="..."}` series
/// (only non-empty buckets plus `+Inf`), `name_sum`, and `name_count`. The
/// output is terminated by a `# EOF` line so a line-oriented protocol can
/// frame it.
pub fn render_text(samples: &[Sample]) -> String {
    let mut sorted: Vec<&Sample> = samples.iter().collect();
    sorted.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));

    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for sample in sorted {
        if last_family != Some(sample.name.as_str()) {
            let _ = writeln!(out, "# TYPE {} {}", sample.name, sample.value.kind());
            last_family = Some(sample.name.as_str());
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", sample.name, labels(&sample.labels, None), v);
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", sample.name, labels(&sample.labels, None), v);
            }
            SampleValue::Histogram(snap) => {
                let mut cum = 0u64;
                for (i, &n) in snap.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cum += n;
                    let le = crate::Histogram::bucket_bounds(i).1.to_string();
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        sample.name,
                        labels(&sample.labels, Some(&le)),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    sample.name,
                    labels(&sample.labels, Some("+Inf")),
                    snap.count
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    sample.name,
                    labels(&sample.labels, None),
                    snap.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    sample.name,
                    labels(&sample.labels, None),
                    snap.count
                );
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Renders a `{k="v",...}` label block, optionally with a trailing `le`.
fn labels(pairs: &[(String, String)], le: Option<&str>) -> String {
    if pairs.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{}\"", le);
    }
    out.push('}');
    out
}

/// Escapes a label value per the exposition format.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn counter(name: &str, labels: &[(&str, &str)], v: u64) -> Sample {
        Sample {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value: SampleValue::Counter(v),
        }
    }

    #[test]
    fn renders_counters_with_type_header() {
        let text = render_text(&[
            counter("tdh_requests_total", &[("command", "TRUTH")], 3),
            counter("tdh_requests_total", &[("command", "STATS")], 1),
        ]);
        assert!(text.contains("# TYPE tdh_requests_total counter\n"));
        assert!(text.contains("tdh_requests_total{command=\"STATS\"} 1\n"));
        assert!(text.contains("tdh_requests_total{command=\"TRUTH\"} 3\n"));
        assert!(text.ends_with("# EOF\n"));
        // One TYPE line per family even with several series.
        assert_eq!(text.matches("# TYPE").count(), 1);
    }

    #[test]
    fn renders_histogram_cumulatively() {
        let h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(2);
        let text = render_text(&[Sample {
            name: "lat".into(),
            labels: vec![],
            value: SampleValue::Histogram(h.snapshot()),
        }]);
        assert!(text.contains("# TYPE lat histogram\n"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum 5\n"));
        assert!(text.contains("lat_count 3\n"));
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let h1 = Histogram::new();
        h1.record(10);
        let h2 = Histogram::new();
        h2.record(20);
        let mk = |h: &Histogram| Sample {
            name: "lat".into(),
            labels: vec![],
            value: SampleValue::Histogram(h.snapshot()),
        };
        let merged = merge_samples(vec![
            vec![counter("c", &[], 1), mk(&h1)],
            vec![counter("c", &[], 2), mk(&h2)],
        ]);
        assert_eq!(merged.len(), 2);
        match &merged.iter().find(|s| s.name == "c").unwrap().value {
            SampleValue::Counter(v) => assert_eq!(*v, 3),
            other => panic!("unexpected {other:?}"),
        }
        match &merged.iter().find(|s| s.name == "lat").unwrap().value {
            SampleValue::Histogram(snap) => {
                assert_eq!(snap.count, 2);
                assert_eq!(snap.sum, 30);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let text = render_text(&[counter("c", &[("k", "a\"b\\c")], 1)]);
        assert!(text.contains("c{k=\"a\\\"b\\\\c\"} 1\n"));
    }
}
