//! Fixed log-scale-bucket histogram with lock-free recording and exact merge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets in every [`Histogram`].
///
/// Bucket 0 holds the value `0`; bucket `i` (for `1 <= i <= 64`) holds the
/// half-open power-of-two range `[2^(i-1), 2^i)` — i.e. all values whose
/// highest set bit is bit `i-1`. Together the buckets cover the full `u64`
/// range, so no recorded value is ever dropped or clamped.
pub const N_BUCKETS: usize = 65;

/// A log-scale histogram of `u64` observations.
///
/// * **Recording** is lock-free: one relaxed `fetch_add` into the bucket plus
///   two more for the running sum and count. There is no per-histogram lock
///   and no allocation after construction.
/// * **Merging** is exact: every histogram shares the same fixed bucket
///   layout, so [`merge`](Histogram::merge) (element-wise bucket addition)
///   yields bit-identical bucket counts to recording all observations into a
///   single histogram. This is what lets the sharded router aggregate
///   per-shard latency histograms into one scrape.
/// * **Quantiles** are estimated by walking the cumulative bucket counts and
///   interpolating linearly inside the target bucket; the estimate is always
///   within the bucket that contains the true quantile (error bounded by one
///   power-of-two bucket width).
///
/// Reads ([`snapshot`](Histogram::snapshot), [`count`](Histogram::count))
/// are monitoring-grade: concurrent recorders may produce a snapshot where
/// `sum`/`count` and the buckets are torn relative to each other by in-flight
/// operations. Totals are still conserved — nothing is lost, an observation
/// is just attributed to the snapshot before or after it.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Returns the bucket index that `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Returns the inclusive `(lower, upper)` value range of bucket `index`.
    ///
    /// # Panics
    /// Panics if `index >= N_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < N_BUCKETS, "bucket index {index} out of range");
        if index == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (index - 1);
            let hi = if index == 64 {
                u64::MAX
            } else {
                (1u64 << index) - 1
            };
            (lo, hi)
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds (saturating).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Returns the total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Returns the sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every observation recorded in `other` into `self`.
    ///
    /// Element-wise bucket addition — exact because all histograms share the
    /// same bucket layout.
    pub fn merge(&self, other: &Histogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Adds a previously captured snapshot into `self`.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n != 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.count.fetch_add(snap.count, Ordering::Relaxed);
    }

    /// Captures a point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) of the recorded values.
    ///
    /// Returns `None` when the histogram is empty. See
    /// [`HistogramSnapshot::quantile`] for the estimation contract.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

/// An owned, plain-`u64` copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`N_BUCKETS`] for the layout).
    pub buckets: [u64; N_BUCKETS],
    /// Sum of all observations.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: [0; N_BUCKETS],
            sum: 0,
            count: 0,
        }
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Estimates the `q`-quantile (`q` clamped to `0.0..=1.0`).
    ///
    /// The rank `round(q * (count - 1))` is located by cumulative bucket
    /// count and the estimate interpolated linearly inside that bucket, so
    /// the returned value always lies within the inclusive bounds of the
    /// bucket containing the true quantile. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n > rank {
                let (lo, hi) = Histogram::bucket_bounds(i);
                let within = (rank - seen) as f64 + 0.5;
                let frac = within / n as f64;
                let width = (hi - lo) as f64;
                return Some(lo.saturating_add((width * frac) as u64).min(hi));
            }
            seen += n;
        }
        // Unreachable when `count` matches the bucket totals; under a torn
        // concurrent snapshot fall back to the highest non-empty bucket.
        self.buckets
            .iter()
            .rposition(|&n| n != 0)
            .map(|i| Histogram::bucket_bounds(i).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn record_and_count() {
        let h = Histogram::new();
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
    }

    #[test]
    fn quantile_of_uniform_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        // p50 of 1..=1000 is ~500; the estimate must land in 500's bucket.
        let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(500));
        assert!(p50 >= lo && p50 <= hi, "p50={p50} outside [{lo},{hi}]");
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
    }

    #[test]
    fn empty_quantile_is_none() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn merge_matches_recording_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0u64, 1, 7, 12, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 7, 4096, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }
}
