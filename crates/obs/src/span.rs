//! Drop-guard span timers feeding histograms.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::Histogram;

/// A scope timer: records its elapsed time in microseconds into a histogram
/// when dropped.
///
/// Hot paths should cache the `Arc<Histogram>` once and call
/// [`Span::enter`] directly; the [`crate::span!`] macro is convenience sugar
/// that routes through a registry lookup.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Starts timing; the elapsed microseconds are recorded into `hist` on
    /// drop.
    pub fn enter(hist: Arc<Histogram>) -> Self {
        Self {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// Times the enclosing scope into the `tdh_span_us{name="..."}` histogram of
/// the given registry.
///
/// ```
/// # let reg = tdh_obs::Registry::new();
/// let _guard = tdh_obs::span!(reg, "e_step");
/// ```
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $crate::Span::enter($registry.histogram("tdh_span_us", &[("name", $name)]))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _s = Span::enter(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_macro_uses_named_histogram() {
        let reg = Registry::new();
        {
            let _s = crate::span!(reg, "unit");
        }
        assert_eq!(reg.histogram("tdh_span_us", &[("name", "unit")]).count(), 1);
    }
}
