//! Multi-truth precision / recall / F1 (paper §5.7).
//!
//! In the presence of hierarchies, the truth of an object is not one value
//! but a chain: the most specific truth together with all its (non-root)
//! ancestors — `"Liberty Island"` entails `"NY"` entails `"USA"`. Multi-truth
//! algorithms emit value sets directly; single-truth algorithms are evaluated
//! by closing their single estimate under ancestors ("we treat the ancestors
//! of v and v itself as the multi-truths of v").

use tdh_data::Dataset;
use tdh_hierarchy::{Hierarchy, NodeId};

/// Aggregate (micro-averaged) precision, recall and F1 over all objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTruthReport {
    /// `|est ∩ gold| / |est|`, aggregated over objects.
    pub precision: f64,
    /// `|est ∩ gold| / |gold|`, aggregated over objects.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Objects that entered the aggregation.
    pub n_evaluated: usize,
}

/// `v` and all its non-root ancestors — the multi-truth set entailed by a
/// single value.
pub fn truth_closure(h: &Hierarchy, v: NodeId) -> Vec<NodeId> {
    let mut out = vec![v];
    out.extend(h.ancestors(v).filter(|&a| a != NodeId::ROOT));
    out
}

/// Score per-object estimated truth *sets* against the gold standard.
///
/// `estimates[o]` is the set of values the algorithm believes true for `o`
/// (empty = no output, still counted, contributing zero matches). The gold
/// set is the closure of the gold value under ancestors. Counts are
/// aggregated over objects (micro-averaging), so objects with larger truth
/// sets weigh proportionally more.
pub fn multi_truth_report(ds: &Dataset, estimates: &[Vec<NodeId>]) -> MultiTruthReport {
    assert_eq!(estimates.len(), ds.n_objects());
    let h = ds.hierarchy();
    let mut tp = 0usize;
    let mut est_total = 0usize;
    let mut gold_total = 0usize;
    let mut n = 0usize;
    for o in ds.objects() {
        let Some(gold) = ds.gold(o) else { continue };
        n += 1;
        let gold_set = truth_closure(h, gold);
        let est = &estimates[o.index()];
        est_total += est.len();
        gold_total += gold_set.len();
        tp += est.iter().filter(|v| gold_set.contains(v)).count();
    }
    let precision = if est_total == 0 {
        0.0
    } else {
        tp as f64 / est_total as f64
    };
    let recall = if gold_total == 0 {
        0.0
    } else {
        tp as f64 / gold_total as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    MultiTruthReport {
        precision,
        recall,
        f1,
        n_evaluated: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn fixture() -> Dataset {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("sol");
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        ds.set_gold(o, li);
        ds
    }

    #[test]
    fn closure_excludes_root() {
        let ds = fixture();
        let h = ds.hierarchy();
        let li = h.node_by_name("Liberty Island").unwrap();
        let set = truth_closure(h, li);
        assert_eq!(set.len(), 3); // LI, NY, USA
        assert!(!set.contains(&NodeId::ROOT));
    }

    #[test]
    fn exact_closure_scores_perfectly() {
        let ds = fixture();
        let h = ds.hierarchy();
        let li = h.node_by_name("Liberty Island").unwrap();
        let r = multi_truth_report(&ds, &[truth_closure(h, li)]);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
    }

    #[test]
    fn generalized_estimate_trades_recall_for_precision() {
        // Estimating only USA: precision 1 (USA ∈ gold set) but recall 1/3.
        let ds = fixture();
        let usa = ds.hierarchy().node_by_name("USA").unwrap();
        let r = multi_truth_report(&ds, &[vec![usa]]);
        assert_eq!(r.precision, 1.0);
        assert!((r.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_values_hurt_precision() {
        let ds = fixture();
        let h = ds.hierarchy();
        let la = h.node_by_name("LA").unwrap();
        let usa = h.node_by_name("USA").unwrap();
        // {LA, USA}: only USA matches the gold closure.
        let r = multi_truth_report(&ds, &[vec![la, usa]]);
        assert_eq!(r.precision, 0.5);
        assert!((r.recall - 1.0 / 3.0).abs() < 1e-12);
        assert!(r.f1 > 0.0 && r.f1 < 1.0);
    }

    #[test]
    fn empty_estimate_zeroes() {
        let ds = fixture();
        let r = multi_truth_report(&ds, &[vec![]]);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
    }
}
