//! MAE and relative error for numeric truth discovery (paper §5.8, Table 6).

use tdh_data::NumericDataset;

/// Error measures for numeric truth estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericReport {
    /// Mean absolute error `Σ |est_o − gold_o| / n`.
    pub mae: f64,
    /// Mean relative error `Σ |est_o − gold_o| / |gold_o| / n`, skipping
    /// objects whose gold value is exactly zero (undefined ratio).
    pub relative_error: f64,
    /// Objects that entered the MAE.
    pub n_evaluated: usize,
}

/// Score numeric estimates against the gold standard. `estimates[o]` is the
/// estimate for object `o`; objects without a gold value or an estimate are
/// skipped.
pub fn numeric_report(ds: &NumericDataset, estimates: &[Option<f64>]) -> NumericReport {
    assert_eq!(estimates.len(), ds.n_objects());
    let mut abs_sum = 0.0;
    let mut rel_sum = 0.0;
    let mut n = 0usize;
    let mut n_rel = 0usize;
    for o in ds.objects() {
        let (Some(gold), Some(est)) = (ds.gold(o), estimates[o.index()]) else {
            continue;
        };
        n += 1;
        let err = (est - gold).abs();
        abs_sum += err;
        if gold != 0.0 {
            rel_sum += err / gold.abs();
            n_rel += 1;
        }
    }
    NumericReport {
        mae: abs_sum / n.max(1) as f64,
        relative_error: rel_sum / n_rel.max(1) as f64,
        n_evaluated: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_data::ObjectId;

    fn ds3() -> NumericDataset {
        let mut ds = NumericDataset::new(3, 1);
        ds.set_gold(ObjectId(0), 10.0);
        ds.set_gold(ObjectId(1), -4.0);
        // object 2 has no gold
        ds
    }

    #[test]
    fn exact_estimates_have_zero_error() {
        let ds = ds3();
        let r = numeric_report(&ds, &[Some(10.0), Some(-4.0), Some(1.0)]);
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.relative_error, 0.0);
        assert_eq!(r.n_evaluated, 2);
    }

    #[test]
    fn errors_average_over_evaluated_objects() {
        let ds = ds3();
        let r = numeric_report(&ds, &[Some(12.0), Some(-5.0), None]);
        assert_eq!(r.mae, (2.0 + 1.0) / 2.0);
        assert!((r.relative_error - (0.2 + 0.25) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_gold_skipped_for_relative_error_only() {
        let mut ds = NumericDataset::new(2, 1);
        ds.set_gold(ObjectId(0), 0.0);
        ds.set_gold(ObjectId(1), 2.0);
        let r = numeric_report(&ds, &[Some(1.0), Some(3.0)]);
        assert_eq!(r.mae, (1.0 + 1.0) / 2.0);
        assert_eq!(r.relative_error, 0.5); // only object 1 contributes
        assert_eq!(r.n_evaluated, 2);
    }

    #[test]
    fn missing_estimates_skipped() {
        let ds = ds3();
        let r = numeric_report(&ds, &[None, None, None]);
        assert_eq!(r.n_evaluated, 0);
        assert_eq!(r.mae, 0.0);
    }
}
