//! Accuracy, GenAccuracy and AvgDistance (paper §5).

use tdh_data::{Dataset, ObjectId, ObservationIndex};
use tdh_hierarchy::NodeId;

/// The three single-truth quality measures of the paper.
///
/// * `accuracy` — fraction of evaluated objects whose estimated truth equals
///   the (mapped) gold truth exactly: `Σ I(v*_o = t_o) / |O|`.
/// * `gen_accuracy` — fraction whose estimate is the gold truth *or one of
///   its ancestors*: correct but possibly less informative.
/// * `avg_distance` — mean number of hierarchy edges `d(v*_o, t_o)` between
///   estimate and gold; robust to gold values that are less specific than
///   the estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleTruthReport {
    /// Exact-match accuracy.
    pub accuracy: f64,
    /// Hierarchical (ancestor-tolerant) accuracy.
    pub gen_accuracy: f64,
    /// Mean tree distance between estimate and gold.
    pub avg_distance: f64,
    /// Objects with a gold label that entered the averages.
    pub n_evaluated: usize,
    /// Objects skipped for lack of a gold label or an estimate.
    pub n_skipped: usize,
}

/// The evaluation target `t_o` for object `o`: the gold value if it appears
/// among the candidates, otherwise *the most specific candidate value among
/// the ancestors of the truth* (paper §5). Falls back to the raw gold value
/// when no candidate lies on the gold's root path (any estimate is then
/// simply wrong, and distances are still well defined).
pub fn mapped_gold(ds: &Dataset, idx: &ObservationIndex, o: ObjectId) -> Option<NodeId> {
    let gold = ds.gold(o)?;
    let view = idx.view(o);
    if view.cand_index(gold).is_some() {
        return Some(gold);
    }
    ds.hierarchy()
        .most_specific_ancestor_in(&view.candidates, gold)
        .or(Some(gold))
}

/// Score estimated truths against the gold standard.
///
/// `truths[o]` is the estimate for object `o` (`None` = no estimate, counted
/// as skipped). Objects without gold labels are skipped.
pub fn single_truth_report(ds: &Dataset, truths: &[Option<NodeId>]) -> SingleTruthReport {
    let idx = ObservationIndex::build(ds);
    single_truth_report_with_index(ds, &idx, truths)
}

/// [`single_truth_report`] with a pre-built index (avoids the rebuild inside
/// evaluation loops that already maintain one).
pub fn single_truth_report_with_index(
    ds: &Dataset,
    idx: &ObservationIndex,
    truths: &[Option<NodeId>],
) -> SingleTruthReport {
    assert_eq!(truths.len(), ds.n_objects(), "one estimate slot per object");
    let h = ds.hierarchy();
    let mut n = 0usize;
    let mut skipped = 0usize;
    let mut exact = 0usize;
    let mut gen = 0usize;
    let mut dist_sum = 0u64;
    for o in ds.objects() {
        let (Some(target), Some(est)) = (mapped_gold(ds, idx, o), truths[o.index()]) else {
            skipped += 1;
            continue;
        };
        n += 1;
        if est == target {
            exact += 1;
        }
        if h.is_ancestor_or_self(est, target) {
            gen += 1;
        }
        dist_sum += u64::from(h.distance(est, target));
    }
    let denom = n.max(1) as f64;
    SingleTruthReport {
        accuracy: exact as f64 / denom,
        gen_accuracy: gen as f64 / denom,
        avg_distance: dist_sum as f64 / denom,
        n_evaluated: n,
        n_skipped: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn fixture() -> (Dataset, Vec<ObjectId>) {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let s = ds.intern_source("s");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let la = ds.hierarchy().node_by_name("LA").unwrap();

        let o1 = ds.intern_object("sol");
        ds.add_record(o1, s, ny);
        let s2 = ds.intern_source("s2");
        let s3 = ds.intern_source("s3");
        ds.add_record(o1, s2, li);
        ds.add_record(o1, s3, la);
        ds.set_gold(o1, li);

        let o2 = ds.intern_object("other");
        ds.add_record(o2, s, la);
        ds.set_gold(o2, la);
        (ds, vec![o1, o2])
    }

    #[test]
    fn perfect_estimates() {
        let (ds, os) = fixture();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let la = ds.hierarchy().node_by_name("LA").unwrap();
        let mut truths = vec![None; ds.n_objects()];
        truths[os[0].index()] = Some(li);
        truths[os[1].index()] = Some(la);
        let r = single_truth_report(&ds, &truths);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.gen_accuracy, 1.0);
        assert_eq!(r.avg_distance, 0.0);
        assert_eq!(r.n_evaluated, 2);
    }

    #[test]
    fn generalized_estimate_counts_for_gen_accuracy_only() {
        let (ds, os) = fixture();
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let la = ds.hierarchy().node_by_name("LA").unwrap();
        let mut truths = vec![None; ds.n_objects()];
        truths[os[0].index()] = Some(ny); // ancestor of gold Liberty Island
        truths[os[1].index()] = Some(la);
        let r = single_truth_report(&ds, &truths);
        assert_eq!(r.accuracy, 0.5);
        assert_eq!(r.gen_accuracy, 1.0);
        assert_eq!(r.avg_distance, 0.5); // d(NY, LI) = 1 over 2 objects
    }

    #[test]
    fn wrong_estimate() {
        let (ds, os) = fixture();
        let la = ds.hierarchy().node_by_name("LA").unwrap();
        let mut truths = vec![None; ds.n_objects()];
        truths[os[0].index()] = Some(la); // gold is Liberty Island
        truths[os[1].index()] = Some(la);
        let r = single_truth_report(&ds, &truths);
        assert_eq!(r.accuracy, 0.5);
        assert_eq!(r.gen_accuracy, 0.5);
        // d(LA, Liberty Island) = 4.
        assert_eq!(r.avg_distance, 2.0);
    }

    #[test]
    fn gold_mapped_to_most_specific_candidate_ancestor() {
        // Gold = Liberty Island but only NY and LA are claimed: target
        // becomes NY.
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("sol");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let la = ds.hierarchy().node_by_name("LA").unwrap();
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        ds.add_record(o, s1, ny);
        ds.add_record(o, s2, la);
        ds.set_gold(o, li);

        let idx = ObservationIndex::build(&ds);
        assert_eq!(mapped_gold(&ds, &idx, o), Some(ny));

        let mut truths = vec![None; ds.n_objects()];
        truths[o.index()] = Some(ny);
        let r = single_truth_report(&ds, &truths);
        assert_eq!(r.accuracy, 1.0, "NY is the mapped gold");
    }

    #[test]
    fn missing_gold_and_estimates_are_skipped() {
        let (ds, os) = fixture();
        let mut truths = vec![None; ds.n_objects()];
        truths[os[0].index()] = None;
        truths[os[1].index()] = Some(ds.hierarchy().node_by_name("LA").unwrap());
        let r = single_truth_report(&ds, &truths);
        assert_eq!(r.n_evaluated, 1);
        assert_eq!(r.n_skipped, 1);
        assert_eq!(r.accuracy, 1.0);
    }
}
