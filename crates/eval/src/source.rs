//! Per-source reliability statistics (Figures 1 and 5).

use tdh_data::{Dataset, ObservationIndex, SourceId};

use crate::single::mapped_gold;

/// Ground-truth reliability of one source, computed over its claims whose
/// objects carry gold labels.
///
/// * `accuracy` — fraction of claims that equal the (mapped) gold exactly.
/// * `gen_accuracy` — fraction that are the gold value or one of its
///   ancestors: the *generalized accuracy* of Figure 1.
///
/// A source that generalizes a lot sits far above the `accuracy ==
/// gen_accuracy` diagonal — exactly the phenomenon the TDH model's
/// three-way trustworthiness `φ_s` captures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceReliability {
    /// The source.
    pub source: SourceId,
    /// Number of claims this source made (over gold-labelled objects).
    pub n_claims: usize,
    /// Exact accuracy.
    pub accuracy: f64,
    /// Hierarchically-correct accuracy.
    pub gen_accuracy: f64,
}

/// Compute [`SourceReliability`] for every source with at least one claim
/// about a gold-labelled object. Sources without such claims are reported
/// with `n_claims == 0` and zero accuracies.
pub fn source_reliability(ds: &Dataset, idx: &ObservationIndex) -> Vec<SourceReliability> {
    let h = ds.hierarchy();
    let mut exact = vec![0usize; ds.n_sources()];
    let mut gen = vec![0usize; ds.n_sources()];
    let mut total = vec![0usize; ds.n_sources()];
    for r in ds.records() {
        let Some(target) = mapped_gold(ds, idx, r.object) else {
            continue;
        };
        total[r.source.index()] += 1;
        if r.value == target {
            exact[r.source.index()] += 1;
        }
        if h.is_ancestor_or_self(r.value, target) {
            gen[r.source.index()] += 1;
        }
    }
    (0..ds.n_sources())
        .map(|i| SourceReliability {
            source: SourceId::from_index(i),
            n_claims: total[i],
            accuracy: exact[i] as f64 / total[i].max(1) as f64,
            gen_accuracy: gen[i] as f64 / total[i].max(1) as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    #[test]
    fn generalizing_source_sits_above_diagonal() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY", "Liberty Island"]);
        b.add_path(&["USA", "CA", "LA"]);
        let mut ds = Dataset::new(b.build());
        let exacting = ds.intern_source("exact");
        let generalizer = ds.intern_source("general");
        let liar = ds.intern_source("liar");
        let li = ds.hierarchy().node_by_name("Liberty Island").unwrap();
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        let la = ds.hierarchy().node_by_name("LA").unwrap();

        for i in 0..4 {
            let o = ds.intern_object(&format!("o{i}"));
            ds.add_record(o, exacting, li);
            ds.add_record(o, generalizer, ny);
            ds.add_record(o, liar, la);
            ds.set_gold(o, li);
        }

        let idx = ObservationIndex::build(&ds);
        let rel = source_reliability(&ds, &idx);
        assert_eq!(rel.len(), 3);

        let ex = &rel[exacting.index()];
        assert_eq!((ex.accuracy, ex.gen_accuracy), (1.0, 1.0));
        assert_eq!(ex.n_claims, 4);

        let ge = &rel[generalizer.index()];
        assert_eq!(ge.accuracy, 0.0);
        assert_eq!(ge.gen_accuracy, 1.0, "generalized claims are correct");

        let lr = &rel[liar.index()];
        assert_eq!((lr.accuracy, lr.gen_accuracy), (0.0, 0.0));
    }

    #[test]
    fn sources_without_gold_claims_report_zero() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["USA", "NY"]);
        let mut ds = Dataset::new(b.build());
        let s = ds.intern_source("s");
        let o = ds.intern_object("o");
        let ny = ds.hierarchy().node_by_name("NY").unwrap();
        ds.add_record(o, s, ny); // no gold set
        let idx = ObservationIndex::build(&ds);
        let rel = source_reliability(&ds, &idx);
        assert_eq!(rel[0].n_claims, 0);
        assert_eq!(rel[0].accuracy, 0.0);
    }
}
