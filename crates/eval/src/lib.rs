//! Quality measures for truth discovery (paper §5, "Quality Measures").
//!
//! * [`single_truth_report`] — *Accuracy*, *GenAccuracy* and *AvgDistance*
//!   against the gold standard, with the paper's mapping of gold values that
//!   are missing from the candidate set onto their most specific candidate
//!   ancestor.
//! * [`multi_truth_report`] — precision / recall / F1 for multi-truth
//!   discovery (§5.7), where the truth set of `v` is taken to be `v` together
//!   with all its non-root ancestors.
//! * [`numeric_report`] — MAE and mean relative error for numeric truth
//!   discovery (§5.8).
//! * [`source_reliability`] — the per-source exact / generalized accuracies
//!   behind Figures 1 and 5.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod multi;
mod numeric;
mod single;
mod source;

pub use multi::{multi_truth_report, truth_closure, MultiTruthReport};
pub use numeric::{numeric_report, NumericReport};
pub use single::{
    mapped_gold, single_truth_report, single_truth_report_with_index, SingleTruthReport,
};
pub use source::{source_reliability, SourceReliability};
