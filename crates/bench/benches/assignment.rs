//! Task-assignment benchmarks: the UEAI filter's effect (Fig. 13) and the
//! competing assigners' costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tdh_bench::harness::{make_assigner, SEED};
use tdh_core::{assign_exhaustive, EaiAssigner, TaskAssigner, TdhConfig, TdhModel, TruthDiscovery};
use tdh_crowd::WorkerPool;
use tdh_data::ObservationIndex;
use tdh_datagen::{generate_birthplaces, BirthPlacesConfig};

fn bench_filter_effect(c: &mut Criterion) {
    let corpus = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 400,
            hierarchy_nodes: 600,
        },
        SEED,
    );

    let mut group = c.benchmark_group("assignment/filter");
    group.sample_size(10);
    for scale in [1usize, 4] {
        let mut ds = corpus.dataset.duplicated(scale);
        let pool = WorkerPool::uniform(&mut ds, 10, 0.75, SEED);
        let idx = ObservationIndex::build(&ds);
        let mut model = TdhModel::new(TdhConfig::default());
        model.infer(&ds, &idx);

        group.bench_with_input(
            BenchmarkId::new("with-ueai-filter", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    let mut assigner = EaiAssigner::new();
                    black_box(assigner.assign(&model, &ds, &idx, pool.ids(), 5))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("without-filter", scale), &scale, |b, _| {
            b.iter(|| black_box(assign_exhaustive(&model, &ds, &idx, pool.ids(), 5)))
        });
    }
    group.finish();
}

fn bench_assigners(c: &mut Criterion) {
    let corpus = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 400,
            hierarchy_nodes: 600,
        },
        SEED + 1,
    );
    let mut ds = corpus.dataset.clone();
    let pool = WorkerPool::uniform(&mut ds, 10, 0.75, SEED);
    let idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(TdhConfig::default());
    model.infer(&ds, &idx);

    let mut group = c.benchmark_group("assignment/assigners");
    group.sample_size(10);
    for name in ["EAI", "QASCA", "ME"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| {
                let mut assigner = make_assigner(name);
                black_box(assigner.assign(&model, &ds, &idx, pool.ids(), 5))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter_effect, bench_assigners);
criterion_main!(benches);
