//! Hierarchy substrate benchmarks: the tree queries every E-step and every
//! evaluation pass lean on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdh_datagen::{generate_hierarchy, HierarchyConfig};
use tdh_hierarchy::numeric::NumericHierarchy;
use tdh_hierarchy::NodeId;

fn bench_tree_queries(c: &mut Criterion) {
    let h = generate_hierarchy(
        &HierarchyConfig {
            n_nodes: 5_000,
            height: 5,
            top_level: 6,
        },
        7,
    );
    let nodes: Vec<NodeId> = h.nodes().collect();
    let pairs: Vec<(NodeId, NodeId)> = (0..1_000)
        .map(|i| {
            (
                nodes[(i * 37) % nodes.len()],
                nodes[(i * 101 + 13) % nodes.len()],
            )
        })
        .collect();

    c.bench_function("hierarchy/lca-1k-pairs", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                black_box(h.lca(u, v));
            }
        })
    });
    c.bench_function("hierarchy/distance-1k-pairs", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                black_box(h.distance(u, v));
            }
        })
    });
    c.bench_function("hierarchy/is-strict-ancestor-1k-pairs", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                black_box(h.is_strict_ancestor(u, v));
            }
        })
    });
}

fn bench_numeric_lattice(c: &mut Criterion) {
    // Claimed values of one object at mixed resolutions.
    let claims: Vec<f64> = (0..40)
        .map(|i| {
            let base = 605.196_432;
            let places = i % 6;
            tdh_hierarchy::numeric::round_to_place(base + (i / 6) as f64, -(places as i32))
        })
        .collect();
    c.bench_function("hierarchy/numeric-lattice-40-claims", |b| {
        b.iter(|| black_box(NumericHierarchy::build(&claims)))
    });
}

criterion_group!(benches, bench_tree_queries, bench_numeric_lattice);
criterion_main!(benches);
