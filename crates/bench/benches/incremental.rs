//! The incremental EM (§4.2) vs a full EM refit: the speedup that makes
//! per-pair EAI computation feasible at all.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tdh_core::{ProbabilisticCrowdModel, TdhConfig, TdhModel, TruthDiscovery};
use tdh_data::{ObjectId, ObservationIndex};
use tdh_datagen::{generate_birthplaces, BirthPlacesConfig};

fn bench_incremental_vs_refit(c: &mut Criterion) {
    let corpus = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 400,
            hierarchy_nodes: 600,
        },
        11,
    );
    let mut ds = corpus.dataset.clone();
    let w = ds.intern_worker("bench-worker");
    let idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(TdhConfig::default());
    model.infer(&ds, &idx);
    let o = ObjectId(0);

    c.bench_function("incremental/posterior-one-answer", |b| {
        b.iter(|| black_box(model.posterior_given_answer(&idx, o, w, 0)))
    });

    c.bench_function("incremental/full-em-refit", |b| {
        b.iter(|| {
            let mut fresh = TdhModel::new(TdhConfig::default());
            black_box(fresh.infer(&ds, &idx))
        })
    });
}

fn bench_eai_single_pair(c: &mut Criterion) {
    let corpus = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 400,
            hierarchy_nodes: 600,
        },
        12,
    );
    let mut ds = corpus.dataset.clone();
    let w = ds.intern_worker("bench-worker");
    let idx = ObservationIndex::build(&ds);
    let mut model = TdhModel::new(TdhConfig::default());
    model.infer(&ds, &idx);

    c.bench_function("incremental/eai-single-pair", |b| {
        b.iter(|| black_box(tdh_core::eai(&model, &idx, ObjectId(1), w, idx.n_objects())))
    });
}

criterion_group!(benches, bench_incremental_vs_refit, bench_eai_single_pair);
criterion_main!(benches);
