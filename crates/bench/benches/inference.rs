//! Criterion micro-benchmarks for the truth-inference algorithms — the
//! measured backbone of Fig. 12's per-round inference times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tdh_bench::harness::{make_inference, INFERENCE_ALGORITHMS};
use tdh_data::ObservationIndex;
use tdh_datagen::{generate_birthplaces, generate_heritages, BirthPlacesConfig, HeritagesConfig};

fn bench_inference(c: &mut Criterion) {
    let birthplaces = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 600,
            hierarchy_nodes: 800,
        },
        42,
    );
    let heritages = generate_heritages(
        &HeritagesConfig {
            n_objects: 200,
            n_sources: 400,
            n_claims: 1_200,
            hierarchy_nodes: 400,
        },
        43,
    );

    for corpus in [&birthplaces, &heritages] {
        let idx = ObservationIndex::build(&corpus.dataset);
        let mut group = c.benchmark_group(format!("inference/{}", corpus.name));
        group.sample_size(10);
        for name in INFERENCE_ALGORITHMS {
            group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
                b.iter(|| {
                    let mut algo = make_inference(name);
                    black_box(algo.infer(&corpus.dataset, &idx))
                })
            });
        }
        group.finish();
    }
}

fn bench_index_build(c: &mut Criterion) {
    let corpus = generate_birthplaces(
        &BirthPlacesConfig {
            n_objects: 600,
            hierarchy_nodes: 800,
        },
        44,
    );
    c.bench_function("index/build-birthplaces-600", |b| {
        b.iter(|| black_box(ObservationIndex::build(&corpus.dataset)))
    });
}

criterion_group!(benches, bench_inference, bench_index_build);
criterion_main!(benches);
