//! `sharding` — not a paper figure: the `tdh-serve` sharded serving layer
//! under mixed load.
//!
//! For each shard count N ∈ {1, 2, 4}: bootstrap a [`ShardedServer`] on
//! 85% of the corpus's records, then run a **mixed** phase — reader
//! threads hammer `truth`/`source_reliability`/`top_uncertain` against the
//! per-shard published states (lock-free) while the main thread streams
//! the remaining 15% through `ingest` in chunks, routed to shards by
//! object-name hash. Reports ingest and query throughput per shard count,
//! plus the post-stream refit cost (all shards refit, warm).
//!
//! `results/sharding.json` fields (asserted by CI via
//! [`save_checked`](crate::report::save_checked)): `shards`,
//! `ingest_claims_per_s`, `query_per_s`, `query_p50_us`, `query_p95_us`,
//! `query_p99_us` — one row per shard count, the percentiles estimated
//! from a shared `tdh_obs::Histogram` every reader thread records into.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use tdh_core::TdhConfig;
use tdh_data::{Dataset, ObjectId};
use tdh_serve::{Claim, RefitPolicy, ShardedServer};

use crate::harness::{birthplaces, print_table};
use crate::report::{save_checked, MetricRow};
use crate::Scale;

/// Rebuild `ds` with only its first `n_records` records (same hierarchy,
/// gold labels and interning order) — the pre-stream corpus.
fn record_prefix(ds: &Dataset, n_records: usize) -> Dataset {
    let mut out = Dataset::new(ds.hierarchy().clone());
    for o in ds.objects() {
        let no = out.intern_object(ds.object_name(o));
        if let Some(g) = ds.gold(o) {
            out.set_gold(no, g);
        }
    }
    for s in ds.sources() {
        out.intern_source(ds.source_name(s));
    }
    for w in ds.workers() {
        out.intern_worker(ds.worker_name(w));
    }
    for r in &ds.records()[..n_records] {
        out.add_record(r.object, r.source, r.value);
    }
    out
}

/// The sharding scenario at the requested scale.
pub fn sharding(scale: Scale) {
    let (reader_threads, chunk) = match scale {
        Scale::Paper => (4usize, 1024usize),
        Scale::Quick => (2usize, 512usize),
    };
    let corpus = birthplaces(scale);
    let ds_full = corpus.dataset;
    let h = ds_full.hierarchy().clone();
    let n_total = ds_full.records().len();
    let n_batch = n_total * 15 / 100;
    let n_keep = n_total - n_batch;
    let ds0 = record_prefix(&ds_full, n_keep);
    let stream: Vec<Claim> = ds_full.records()[n_keep..]
        .iter()
        .map(|r| Claim::Record {
            object: ds_full.object_name(r.object).to_string(),
            source: ds_full.source_name(r.source).to_string(),
            value: h.name(r.value).to_string(),
        })
        .collect();
    let object_names: Vec<String> = (0..ds_full.n_objects())
        .map(|i| ds_full.object_name(ObjectId::from_index(i)).to_string())
        .collect();
    let source_names: Vec<String> = ds_full
        .sources()
        .map(|s| ds_full.source_name(s).to_string())
        .collect();
    println!(
        "[{}] {} records: bootstrap on {n_keep}, stream {n_batch} under \
         {reader_threads} reader threads, shard counts 1/2/4",
        corpus.name, n_total
    );

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for n_shards in [1usize, 2, 4] {
        // Manual policy: the mixed phase measures routing + index append +
        // per-shard WAL-free ingest; the refit cost is reported separately
        // (one warm refit per shard after the stream).
        let t0 = Instant::now();
        let sharded = ShardedServer::new(
            ds0.clone(),
            TdhConfig::default(),
            RefitPolicy::Manual,
            n_shards,
        );
        let bootstrap_s = t0.elapsed().as_secs_f64();

        // --- Mixed phase: lock-free readers race the ingest stream. ---
        // Every reader records each query's latency into one shared
        // histogram (lock-free atomics), so the percentiles below cover
        // the full mixed-phase distribution across threads.
        let stop = AtomicBool::new(false);
        let latency = tdh_obs::Histogram::new();
        let readers_handle = sharded.readers();
        let (ingest_s, queries_done, mixed_s) = std::thread::scope(|scope| {
            let reader_handles: Vec<_> = (0..reader_threads)
                .map(|t| {
                    let readers = readers_handle.clone();
                    let stop = &stop;
                    let latency = &latency;
                    let object_names = &object_names;
                    let source_names = &source_names;
                    scope.spawn(move || {
                        let mut done = 0u64;
                        let mut q = t;
                        while !stop.load(Ordering::Relaxed) {
                            let tq = Instant::now();
                            let name = &object_names[q % object_names.len()];
                            let shard = tdh_serve::shard_of(name, readers.len());
                            let state = readers[shard].load();
                            match q % 10 {
                                0..=7 => {
                                    let _ = state.truth(name);
                                }
                                8 => {
                                    let _ = state
                                        .source_reliability(&source_names[q % source_names.len()]);
                                }
                                _ => {
                                    let _ = state.top_uncertain(10);
                                }
                            }
                            // Nanosecond granularity: lock-free reads are
                            // sub-µs, µs buckets would flatten them to 0.
                            latency
                                .record(u64::try_from(tq.elapsed().as_nanos()).unwrap_or(u64::MAX));
                            done += 1;
                            q += reader_threads;
                        }
                        done
                    })
                })
                .collect();
            let t1 = Instant::now();
            for chunk_claims in stream.chunks(chunk) {
                sharded.ingest(chunk_claims).expect("sharded ingest");
            }
            let ingest_s = t1.elapsed().as_secs_f64();
            // At quick scale the stream can drain in well under a
            // millisecond; keep the readers sampling until the mixed
            // window is long enough for the query rate to mean something.
            while t1.elapsed() < std::time::Duration::from_millis(50) {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            stop.store(true, Ordering::Relaxed);
            let queries_done: u64 = reader_handles
                .into_iter()
                .map(|h| h.join().expect("reader thread"))
                .sum();
            (ingest_s, queries_done, t1.elapsed().as_secs_f64())
        });
        let ingest_claims_per_s = n_batch as f64 / ingest_s.max(1e-12);
        let query_per_s = queries_done as f64 / mixed_s.max(1e-12);
        let quantile_us = |q: f64| latency.quantile(q).unwrap_or(0) as f64 / 1e3;
        let query_p50_us = quantile_us(0.50);
        let query_p95_us = quantile_us(0.95);
        let query_p99_us = quantile_us(0.99);

        // --- Fold the stream in: one warm refit per shard. ---
        let t2 = Instant::now();
        let summaries = sharded.refit_now();
        let refit_s = t2.elapsed().as_secs_f64();
        assert!(
            summaries.iter().all(|s| s.warm),
            "post-stream refits must warm-start"
        );
        let stats = sharded.stats();
        assert_eq!(stats.n_records, n_total, "every streamed claim landed");
        assert_eq!(stats.pending_claims, 0, "refit folded the stream in");

        table.push(vec![
            n_shards.to_string(),
            format!("{bootstrap_s:.3}"),
            format!("{ingest_claims_per_s:.0}"),
            format!("{query_per_s:.0}"),
            format!("{query_p50_us:.2}/{query_p95_us:.2}/{query_p99_us:.2}"),
            format!("{refit_s:.3}"),
        ]);
        rows.push(MetricRow {
            label: format!("shards-{n_shards}"),
            corpus: corpus.name.clone(),
            metrics: vec![
                ("shards".into(), n_shards as f64),
                ("bootstrap_s".into(), bootstrap_s),
                ("batch_claims".into(), n_batch as f64),
                ("ingest_claims_per_s".into(), ingest_claims_per_s),
                ("query_per_s".into(), query_per_s),
                ("query_p50_us".into(), query_p50_us),
                ("query_p95_us".into(), query_p95_us),
                ("query_p99_us".into(), query_p99_us),
                ("reader_threads".into(), reader_threads as f64),
                ("refit_s".into(), refit_s),
            ],
        });
    }

    print_table(
        &[
            "shards",
            "bootstrap (s)",
            "ingest claims/s",
            "queries/s (mixed)",
            "query p50/p95/p99 (µs)",
            "refit all shards (s)",
        ],
        &table,
    );
    save_checked(
        "sharding",
        &rows,
        &[
            "shards",
            "ingest_claims_per_s",
            "query_per_s",
            "query_p50_us",
            "query_p95_us",
            "query_p99_us",
        ],
    );
}
