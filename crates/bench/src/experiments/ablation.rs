//! Ablation study: what each TDH design choice contributes.
//!
//! Not a paper artefact — this quantifies the two modelling decisions the
//! paper motivates qualitatively:
//!
//! * the **three-way hierarchy-aware likelihood** (vs collapsing generalized
//!   values into the wrong case, i.e. a classic two-interpretation model);
//! * the **worker popularity terms** `Pop2`/`Pop3` (vs uniform worker error
//!   distributions), which encode the source → worker misinformation
//!   dependency;
//! * the **incremental-EM posterior inside EAI** (vs QASCA's undamped
//!   single Bayes update), isolated by comparing EAI and QASCA under the
//!   same TDH model elsewhere (Fig. 6/7).

use tdh_core::{AblationFlags, TdhConfig, TdhModel};
use tdh_crowd::{run_simulation, SimulationConfig, WorkerPool};
use tdh_data::ObservationIndex;
use tdh_eval::single_truth_report_with_index;

use crate::harness::{both_corpora, make_assigner, print_table, SEED};
use crate::report::{save, MetricRow};
use crate::Scale;

const VARIANTS: [(&str, AblationFlags); 3] = [
    (
        "TDH (full)",
        AblationFlags {
            hierarchy_aware: true,
            worker_popularity: true,
        },
    ),
    (
        "TDH w/o hierarchy",
        AblationFlags {
            hierarchy_aware: false,
            worker_popularity: true,
        },
    ),
    (
        "TDH w/o popularity",
        AblationFlags {
            hierarchy_aware: true,
            worker_popularity: false,
        },
    ),
];

/// Run the ablation grid: pure inference quality plus a short crowdsourcing
/// campaign per variant.
pub fn ablation(scale: Scale) {
    let rounds = scale.rounds(20);
    let mut out = Vec::new();
    for corpus in both_corpora(scale) {
        println!("[{}]", corpus.name);
        let idx = ObservationIndex::build(&corpus.dataset);
        let mut rows = Vec::new();
        for (label, flags) in VARIANTS {
            let cfg = TdhConfig {
                ablation: flags,
                ..Default::default()
            };
            // Inference-only quality.
            let mut model = TdhModel::new(cfg);
            let est = tdh_core::TruthDiscovery::infer(&mut model, &corpus.dataset, &idx);
            let report = single_truth_report_with_index(&corpus.dataset, &idx, &est.truths);

            // Short crowdsourcing campaign with EAI.
            let mut ds = corpus.dataset.clone();
            let mut pool = WorkerPool::uniform(&mut ds, 10, 0.75, SEED);
            let mut model = TdhModel::new(cfg);
            let mut assigner = make_assigner("EAI");
            let sim = run_simulation(
                &mut ds,
                &mut model,
                assigner.as_mut(),
                &mut pool,
                &SimulationConfig {
                    rounds,
                    tasks_per_worker: 5,
                    ..Default::default()
                },
            );
            rows.push(vec![
                label.to_string(),
                format!("{:.4}", report.accuracy),
                format!("{:.4}", report.gen_accuracy),
                format!("{:.4}", report.avg_distance),
                format!("{:.4}", sim.final_accuracy()),
            ]);
            out.push(MetricRow {
                label: label.to_string(),
                corpus: corpus.name.clone(),
                metrics: vec![
                    ("accuracy".into(), report.accuracy),
                    ("gen_accuracy".into(), report.gen_accuracy),
                    ("avg_distance".into(), report.avg_distance),
                    ("crowd_final_accuracy".into(), sim.final_accuracy()),
                ],
            });
        }
        print_table(
            &[
                "variant",
                "Accuracy",
                "GenAccuracy",
                "AvgDistance",
                &format!("Accuracy@r{rounds} (EAI)"),
            ],
            &rows,
        );
        println!();
    }
    save("ablation", &out);
}
