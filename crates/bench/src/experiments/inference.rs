//! Pure-inference experiments: Fig. 1, Table 3, Fig. 5, Table 5, Table 6.

use tdh_baselines::numeric::{
    Catd, CrhNumeric, LcaNumeric, MeanNumeric, NumericTruthDiscovery, VoteNumeric,
};
use tdh_baselines::{Asums, Dart, LfcMt, Ltm, MultiTruthDiscovery};
use tdh_core::numeric::NumericTdh;
use tdh_core::{TdhConfig, TdhModel, TruthDiscovery};
use tdh_data::{ObservationIndex, SourceId};
use tdh_datagen::{generate_stock, StockAttribute, StockConfig};
use tdh_eval::{multi_truth_report, numeric_report, source_reliability, truth_closure};

use crate::harness::{both_corpora, print_table, run_inference, INFERENCE_ALGORITHMS, SEED};
use crate::report::{save, MetricRow, Series};
use crate::Scale;

/// Fig. 1 — generalization tendencies: per-source accuracy vs generalized
/// accuracy on both corpora. Sources above the diagonal generalize.
pub fn fig1(scale: Scale) {
    let mut all_series = Vec::new();
    for corpus in both_corpora(scale) {
        let idx = ObservationIndex::build(&corpus.dataset);
        let rel = source_reliability(&corpus.dataset, &idx);
        println!("[{}] sources with ≥ 20 claims:", corpus.name);
        let rows: Vec<Vec<String>> = rel
            .iter()
            .filter(|r| r.n_claims >= 20)
            .map(|r| {
                vec![
                    format!("{}", r.source),
                    format!("{}", r.n_claims),
                    format!("{:.3}", r.accuracy),
                    format!("{:.3}", r.gen_accuracy),
                    format!("{:+.3}", r.gen_accuracy - r.accuracy),
                ]
            })
            .collect();
        print_table(
            &["source", "claims", "accuracy", "gen-accuracy", "gap"],
            &rows,
        );
        let above = rel
            .iter()
            .filter(|r| r.n_claims > 0 && r.gen_accuracy > r.accuracy + 1e-9)
            .count();
        let total = rel.iter().filter(|r| r.n_claims > 0).count();
        println!("  {above}/{total} sources sit above the diagonal (they generalize)\n");
        all_series.push(Series {
            label: "accuracy-vs-genaccuracy".into(),
            corpus: corpus.name.clone(),
            x: rel.iter().map(|r| r.accuracy).collect(),
            y: rel.iter().map(|r| r.gen_accuracy).collect(),
        });
    }
    save("fig1", &all_series);
}

/// Table 3 — truth-inference quality: 10 algorithms × 2 corpora × 3 metrics.
pub fn table3(scale: Scale) {
    let mut out = Vec::new();
    for corpus in both_corpora(scale) {
        let idx = ObservationIndex::build(&corpus.dataset);
        println!("[{}]", corpus.name);
        let mut rows = Vec::new();
        for name in INFERENCE_ALGORITHMS {
            let run = run_inference(name, &corpus.dataset, &idx);
            rows.push(vec![
                run.name.to_string(),
                format!("{:.4}", run.report.accuracy),
                format!("{:.4}", run.report.gen_accuracy),
                format!("{:.4}", run.report.avg_distance),
            ]);
            out.push(MetricRow {
                label: run.name.to_string(),
                corpus: corpus.name.clone(),
                metrics: vec![
                    ("accuracy".into(), run.report.accuracy),
                    ("gen_accuracy".into(), run.report.gen_accuracy),
                    ("avg_distance".into(), run.report.avg_distance),
                ],
            });
        }
        print_table(
            &["algorithm", "Accuracy", "GenAccuracy", "AvgDistance"],
            &rows,
        );
        println!();
    }
    save("table3", &out);
}

/// Fig. 5 — source reliability distribution on BirthPlaces: actual accuracy
/// and generalized accuracy vs TDH's `φ_{s,1}`, `φ_{s,2}` and ASUMS's
/// scalar trust `t(s)`.
pub fn fig5(scale: Scale) {
    let corpus = crate::harness::birthplaces(scale);
    let ds = &corpus.dataset;
    let idx = ObservationIndex::build(ds);
    let rel = source_reliability(ds, &idx);

    let mut tdh = TdhModel::new(TdhConfig::default());
    tdh.infer(ds, &idx);
    let mut asums = Asums::default();
    asums.infer(ds, &idx);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (si, r) in rel.iter().enumerate() {
        let phi = tdh.phi(SourceId::from_index(si));
        let trust = asums.source_trust(SourceId::from_index(si));
        rows.push(vec![
            format!("{}", si + 1),
            format!("{}", r.n_claims),
            format!("{:.3}", r.accuracy),
            format!("{:.3}", r.gen_accuracy),
            format!("{:.3}", phi[0]),
            format!("{:.3}", phi[1]),
            format!("{:.3}", trust),
        ]);
        out.push(MetricRow {
            label: format!("source-{}", si + 1),
            corpus: corpus.name.clone(),
            metrics: vec![
                ("claims".into(), r.n_claims as f64),
                ("accuracy".into(), r.accuracy),
                ("gen_accuracy".into(), r.gen_accuracy),
                ("phi1".into(), phi[0]),
                ("phi2".into(), phi[1]),
                ("asums_trust".into(), trust),
            ],
        });
    }
    print_table(
        &[
            "source",
            "claims",
            "Accuracy",
            "GenAccuracy",
            "φ1 (TDH)",
            "φ2 (TDH)",
            "t(s) ASUMS",
        ],
        &rows,
    );
    // Diagnostic: how well does each model's reliability track the truth?
    let err_tdh: f64 = rel
        .iter()
        .enumerate()
        .map(|(si, r)| (tdh.phi(SourceId::from_index(si))[0] - r.accuracy).abs())
        .sum::<f64>()
        / rel.len() as f64;
    let err_asums: f64 = rel
        .iter()
        .enumerate()
        .map(|(si, r)| (asums.source_trust(SourceId::from_index(si)) - r.accuracy).abs())
        .sum::<f64>()
        / rel.len() as f64;
    println!("  mean |φ1 − Accuracy| = {err_tdh:.3}  (TDH)");
    println!("  mean |t(s) − Accuracy| = {err_asums:.3} (ASUMS)");
    save("fig5", &out);
}

/// Table 5 — multi-truth precision/recall/F1. Single-truth algorithms are
/// closed under ancestors; LFC-MT, DART and LTM emit native value sets.
pub fn table5(scale: Scale) {
    let mut out = Vec::new();
    for corpus in both_corpora(scale) {
        let ds = &corpus.dataset;
        let idx = ObservationIndex::build(ds);
        let h = ds.hierarchy();
        println!("[{}]", corpus.name);
        let mut rows = Vec::new();
        let push = |label: String,
                    sets: Vec<Vec<tdh_hierarchy::NodeId>>,
                    rows: &mut Vec<Vec<String>>,
                    out: &mut Vec<MetricRow>| {
            let r = multi_truth_report(ds, &sets);
            rows.push(vec![
                label.clone(),
                format!("{:.3}", r.precision),
                format!("{:.3}", r.recall),
                format!("{:.3}", r.f1),
            ]);
            out.push(MetricRow {
                label,
                corpus: corpus.name.clone(),
                metrics: vec![
                    ("precision".into(), r.precision),
                    ("recall".into(), r.recall),
                    ("f1".into(), r.f1),
                ],
            });
        };
        for name in INFERENCE_ALGORITHMS {
            let run = run_inference(name, ds, &idx);
            let sets: Vec<Vec<tdh_hierarchy::NodeId>> = run
                .estimate
                .truths
                .iter()
                .map(|t| t.map(|v| truth_closure(h, v)).unwrap_or_default())
                .collect();
            push(name.to_string(), sets, &mut rows, &mut out);
        }
        // Native multi-truth outputs are closed under ancestors, mirroring
        // the paper's protocol ("we treat the ancestors of v and v itself
        // as the multi-truths of v") — a claimed value entails its
        // generalizations.
        let close_sets =
            |sets: Vec<Vec<tdh_hierarchy::NodeId>>| -> Vec<Vec<tdh_hierarchy::NodeId>> {
                sets.into_iter()
                    .map(|set| {
                        let mut closed: Vec<tdh_hierarchy::NodeId> =
                            set.into_iter().flat_map(|v| truth_closure(h, v)).collect();
                        closed.sort_unstable();
                        closed.dedup();
                        closed
                    })
                    .collect()
            };
        push(
            "LFC-MT".to_string(),
            close_sets(LfcMt::default().infer_multi(ds, &idx)),
            &mut rows,
            &mut out,
        );
        push(
            "DART".to_string(),
            close_sets(Dart::default().infer_multi(ds, &idx)),
            &mut rows,
            &mut out,
        );
        push(
            "LTM".to_string(),
            close_sets(Ltm::default().infer_multi(ds, &idx)),
            &mut rows,
            &mut out,
        );
        print_table(&["algorithm", "Precision", "Recall", "F1"], &rows);
        println!();
    }
    save("table5", &out);
}

/// Table 6 — numeric truth discovery on the stock-style corpus: MAE and
/// mean relative error per attribute.
pub fn table6(scale: Scale) {
    let n_objects = match scale {
        Scale::Paper => 1_000,
        Scale::Quick => 150,
    };
    let mut out = Vec::new();
    for attribute in StockAttribute::ALL {
        let cfg = StockConfig {
            attribute,
            n_objects,
            ..Default::default()
        };
        let ds = generate_stock(&cfg, SEED + 7);
        println!("[{}]", attribute.name());
        let mut rows = Vec::new();
        let algos: Vec<(&str, Vec<Option<f64>>)> = vec![
            ("TDH", NumericTdh::default().infer(&ds)),
            ("LCA", LcaNumeric.infer_numeric(&ds)),
            ("CRH", CrhNumeric::default().infer_numeric(&ds)),
            ("CATD", Catd::default().infer_numeric(&ds)),
            ("VOTE", VoteNumeric.infer_numeric(&ds)),
            ("MEAN", MeanNumeric.infer_numeric(&ds)),
        ];
        for (name, est) in algos {
            let r = numeric_report(&ds, &est);
            rows.push(vec![
                name.to_string(),
                format!("{:.4}", r.mae),
                format!("{:.4}", r.relative_error),
            ]);
            out.push(MetricRow {
                label: name.to_string(),
                corpus: attribute.name().to_string(),
                metrics: vec![
                    ("mae".into(), r.mae),
                    ("relative_error".into(), r.relative_error),
                ],
            });
        }
        print_table(&["algorithm", "MAE", "R/E"], &rows);
        println!();
    }
    save("table6", &out);
}
