//! Crowdsourcing-loop experiments: Fig. 6, Fig. 7, Table 4, Figs. 8–11,
//! Figs. 14–17.

use tdh_crowd::{run_simulation, SimulationConfig, SimulationResult, WorkerPool};
use tdh_data::Dataset;
use tdh_datagen::Corpus;

use crate::harness::{
    both_corpora, heritages, make_assigner, make_crowd_model, print_table, table4_combos, SEED,
};
use crate::report::{save, MetricRow, Series};
use crate::Scale;

/// How a worker pool is created per run (fresh ids on the cloned dataset).
#[derive(Debug, Clone, Copy)]
enum Pool {
    /// §5's simulated workers: `n`, `π_p`.
    Uniform(usize, f64),
    /// §5.5's human annotators: `n`, familiarity.
    Human(usize, f64),
    /// §5.6's AMT workers: `n`.
    Amt(usize),
}

impl Pool {
    fn build(self, ds: &mut Dataset, seed: u64) -> WorkerPool {
        match self {
            Pool::Uniform(n, p) => WorkerPool::uniform(ds, n, p, seed),
            Pool::Human(n, f) => WorkerPool::human_annotators(ds, n, f, seed),
            Pool::Amt(n) => WorkerPool::amt(ds, n, seed),
        }
    }
}

/// Run one inference × assignment combo on a fresh copy of `corpus`.
fn run_combo(
    corpus: &Corpus,
    model_name: &str,
    assigner_name: &str,
    rounds: usize,
    pool: Pool,
) -> SimulationResult {
    let mut ds = corpus.dataset.clone();
    let mut pool = pool.build(&mut ds, SEED ^ rounds as u64);
    let mut model = make_crowd_model(model_name);
    let mut assigner = make_assigner(assigner_name);
    let cfg = SimulationConfig {
        rounds,
        tasks_per_worker: 5,
        ..Default::default()
    };
    run_simulation(&mut ds, model.as_mut(), assigner.as_mut(), &mut pool, &cfg)
}

fn print_series_every5(label: &str, ys: &[f64]) {
    let pts: Vec<String> = ys
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 == 0 || *i == ys.len() - 1)
        .map(|(i, y)| format!("r{i}:{y:.4}"))
        .collect();
    println!("  {label:<14} {}", pts.join("  "));
}

/// Fig. 6 — task assignment with TDH: EAI vs QASCA vs ME, accuracy per
/// round.
pub fn fig6(scale: Scale) {
    let rounds = scale.rounds(50);
    let mut series = Vec::new();
    for corpus in both_corpora(scale) {
        println!("[{}] TDH × assigners, {rounds} rounds:", corpus.name);
        for assigner in ["EAI", "QASCA", "ME"] {
            let r = run_combo(&corpus, "TDH", assigner, rounds, Pool::Uniform(10, 0.75));
            let ys = r.accuracy_series();
            print_series_every5(&format!("TDH+{assigner}"), &ys);
            series.push(Series {
                label: format!("TDH+{assigner}"),
                corpus: corpus.name.clone(),
                x: (0..ys.len()).map(|i| i as f64).collect(),
                y: ys,
            });
        }
        println!();
    }
    save("fig6", &series);
}

/// Fig. 7 — actual vs estimated accuracy improvement for EAI and QASCA.
pub fn fig7(scale: Scale) {
    let rounds = scale.rounds(50);
    let mut series = Vec::new();
    for corpus in both_corpora(scale) {
        for assigner in ["EAI", "QASCA"] {
            let r = run_combo(&corpus, "TDH", assigner, rounds, Pool::Uniform(10, 0.75));
            let actual = r.actual_improvements();
            let estimated: Vec<f64> = r.rounds[..rounds]
                .iter()
                .map(|m| m.estimated_improvement.unwrap_or(0.0))
                .collect();
            let mae: f64 = actual
                .iter()
                .zip(&estimated)
                .map(|(a, e)| (a - e).abs())
                .sum::<f64>()
                / actual.len().max(1) as f64;
            let bias: f64 = estimated
                .iter()
                .zip(&actual)
                .map(|(e, a)| e - a)
                .sum::<f64>()
                / actual.len().max(1) as f64;
            println!(
                "[{}] {assigner}: mean |estimated − actual| = {:.3} pps, mean bias = {:+.3} pps",
                corpus.name,
                mae * 100.0,
                bias * 100.0
            );
            series.push(Series {
                label: format!("{assigner}-actual"),
                corpus: corpus.name.clone(),
                x: (0..actual.len()).map(|i| i as f64).collect(),
                y: actual,
            });
            series.push(Series {
                label: format!("{assigner}-estimated"),
                corpus: corpus.name.clone(),
                x: (0..estimated.len()).map(|i| i as f64).collect(),
                y: estimated,
            });
        }
    }
    save("fig7", &series);
}

/// Table 4 — accuracy after round 50, all valid combinations.
pub fn table4(scale: Scale) {
    let rounds = scale.rounds(50);
    let mut out = Vec::new();
    for corpus in both_corpora(scale) {
        println!("[{}] accuracy after {rounds} rounds:", corpus.name);
        let mut rows = Vec::new();
        for (model, assigner) in table4_combos() {
            let r = run_combo(&corpus, model, assigner, rounds, Pool::Uniform(10, 0.75));
            let acc = r.final_accuracy();
            rows.push(vec![format!("{model}+{assigner}"), format!("{acc:.4}")]);
            out.push(MetricRow {
                label: format!("{model}+{assigner}"),
                corpus: corpus.name.clone(),
                metrics: vec![("final_accuracy".into(), acc)],
            });
        }
        rows.sort_by(|a, b| b[1].cmp(&a[1]));
        print_table(&["combination", "Accuracy"], &rows);
        println!();
    }
    save("table4", &out);
}

/// The five headline combos of Figs. 8–10 / 14–16.
const HEADLINE_COMBOS: [(&str, &str); 5] = [
    ("TDH", "EAI"),
    ("VOTE", "ME"),
    ("LCA", "ME"),
    ("DOCS", "MB"),
    ("DOCS", "QASCA"),
];

fn run_headline(
    id: &str,
    corpora: &[Corpus],
    combos: &[(&str, &str)],
    rounds: usize,
    pool: impl Fn(&Corpus) -> Pool,
) {
    let mut series = Vec::new();
    for corpus in corpora {
        println!("[{}] {rounds} rounds:", corpus.name);
        for &(model, assigner) in combos {
            let r = run_combo(corpus, model, assigner, rounds, pool(corpus));
            let label = format!("{model}+{assigner}");
            let acc = r.accuracy_series();
            print_series_every5(&label, &acc);
            let gen: Vec<f64> = r.rounds.iter().map(|m| m.report.gen_accuracy).collect();
            let dist: Vec<f64> = r.rounds.iter().map(|m| m.report.avg_distance).collect();
            let x: Vec<f64> = (0..acc.len()).map(|i| i as f64).collect();
            for (metric, ys) in [
                ("accuracy", acc),
                ("gen_accuracy", gen),
                ("avg_distance", dist),
            ] {
                series.push(Series {
                    label: format!("{label}:{metric}"),
                    corpus: corpus.name.clone(),
                    x: x.clone(),
                    y: ys,
                });
            }
        }
        println!();
    }
    save(id, &series);
}

/// Figs. 8–10 — cost efficiency of the best combos: Accuracy, GenAccuracy,
/// AvgDistance per round (all three emitted into one JSON).
pub fn fig8_to_10(scale: Scale) {
    let rounds = scale.rounds(50);
    run_headline(
        "fig8",
        &both_corpora(scale),
        &HEADLINE_COMBOS,
        rounds,
        |_| Pool::Uniform(10, 0.75),
    );
    // Cost-efficiency headline: rounds needed by TDH+EAI to reach the
    // runner-up's final accuracy.
    for corpus in both_corpora(scale) {
        let tdh = run_combo(&corpus, "TDH", "EAI", rounds, Pool::Uniform(10, 0.75));
        let runner_up = run_combo(&corpus, "DOCS", "QASCA", rounds, Pool::Uniform(10, 0.75));
        let target = runner_up.final_accuracy();
        let reached = tdh
            .accuracy_series()
            .iter()
            .position(|&a| a >= target)
            .unwrap_or(rounds);
        println!(
            "[{}] TDH+EAI reaches DOCS+QASCA's round-{rounds} accuracy ({target:.4}) at round {reached} — {:.0}% of the crowdsourcing cost saved",
            corpus.name,
            100.0 * (1.0 - reached as f64 / rounds as f64)
        );
    }
}

/// Fig. 11 — accuracy after the campaign, varying the simulated workers'
/// correctness probability `π_p`.
pub fn fig11(scale: Scale) {
    let rounds = scale.rounds(50);
    let pi_ps = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let mut series = Vec::new();
    for corpus in both_corpora(scale) {
        println!("[{}]:", corpus.name);
        for &(model, assigner) in &HEADLINE_COMBOS {
            let label = format!("{model}+{assigner}");
            let ys: Vec<f64> = pi_ps
                .iter()
                .map(|&p| {
                    run_combo(&corpus, model, assigner, rounds, Pool::Uniform(10, p))
                        .final_accuracy()
                })
                .collect();
            let pts: Vec<String> = pi_ps
                .iter()
                .zip(&ys)
                .map(|(p, y)| format!("πp={p}:{y:.3}"))
                .collect();
            println!("  {label:<14} {}", pts.join("  "));
            series.push(Series {
                label,
                corpus: corpus.name.clone(),
                x: pi_ps.to_vec(),
                y: ys,
            });
        }
        println!();
    }
    save("fig11", &series);
}

/// Figs. 14–16 — crowdsourcing with (simulated) human annotators: 10
/// workers, 20 rounds, familiarity-dependent reliability.
pub fn fig14_to_16(scale: Scale) {
    let rounds = scale.rounds(20);
    let combos = [
        ("TDH", "EAI"),
        ("LCA", "ME"),
        ("DOCS", "MB"),
        ("DOCS", "QASCA"),
    ];
    run_headline("fig14", &both_corpora(scale), &combos, rounds, |corpus| {
        // §5.5: birthplaces are familiar (big cities), heritage sites are
        // not.
        if corpus.name == "birthplaces" {
            Pool::Human(10, 1.0)
        } else {
            Pool::Human(10, 0.75)
        }
    });
}

/// Fig. 17 — crowdsourcing with an AMT-style population: 20 heterogeneous
/// workers on Heritages.
pub fn fig17(scale: Scale) {
    let rounds = scale.rounds(20);
    let combos = [
        ("TDH", "EAI"),
        ("LCA", "ME"),
        ("DOCS", "MB"),
        ("DOCS", "QASCA"),
    ];
    run_headline("fig17", &[heritages(scale)], &combos, rounds, |_| {
        Pool::Amt(20)
    });
}
