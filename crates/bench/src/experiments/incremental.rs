//! `incremental` — not a paper figure: the delta-refit serving path.
//!
//! The claim behind `RefitPolicy::StalenessBound` is that per-batch work is
//! proportional to the *delta*, not the corpus: `TdhModel::fit_delta`
//! re-estimates only the touched objects and `ServingState::patch` publishes
//! by structural sharing instead of rebuilding the queryable surface. This
//! scenario measures that directly. For each corpus size it bootstraps a
//! server on all but the last 400 records, streams those 400 back in as 8
//! batches of 50 record claims under `StalenessBound { max_touched_frac:
//! 0.1 }` (every batch touches a sliver of the corpus, so every batch takes
//! the delta path), and records the per-batch EM time, patch-publication
//! time and touched-object count. It then runs one forced full refit of the
//! same grown corpus as the baseline the delta path is supposed to beat.
//!
//! `results/incremental.json` fields (asserted by CI, enforced at write
//! time by `save_checked`): `n_claims`, `n_objects`, `batch_claims`,
//! `delta_batches`, `full_fallbacks`, `delta_refit_s`, `publish_patch_s`,
//! `touched_objects`, `full_refit_s`, `publish_rebuild_s`,
//! `refit_speedup`, `publish_speedup`.
//!
//! With `TDH_ASSERT_INCREMENTAL=1` the run additionally asserts the two
//! properties the delta path exists for: per-batch delta-refit time stays
//! near-flat across corpus sizes (within 1.5× of the smallest corpus plus
//! a 10 ms absolute floor — `FlatObservations::refresh` keeps an O(corpus)
//! row-copy component, so perfect flatness is not expected), and patch
//! publication is cheaper than rebuilding the full `ServingState`.

use std::time::Instant;

use tdh_core::TdhConfig;
use tdh_datagen::{generate_webscale, WebScaleConfig};
use tdh_serve::{Claim, RefitKind, RefitPolicy, TruthServer};

use super::serving::record_prefix;
use crate::harness::{print_table, SEED};
use crate::report::{save_checked, MetricRow};
use crate::Scale;

/// Batches streamed per corpus and record claims per batch.
const N_BATCHES: usize = 8;
const BATCH_CLAIMS: usize = 50;

/// A webscale corpus shaped like `WebScaleConfig::quick` but sized to
/// `n_claims`: ~5 claims per object, source/worker counts scaled with the
/// corpus, hierarchy held constant so only volume varies across rows.
fn webscale(n_claims: usize) -> WebScaleConfig {
    WebScaleConfig {
        name: format!("webscale-{n_claims}"),
        n_objects: (n_claims / 5).max(100),
        n_sources: (n_claims / 170).max(40),
        n_workers: (n_claims / 850).max(20),
        n_claims,
        ..WebScaleConfig::quick()
    }
}

/// Per-corpus measurements of the delta path against its full-fit baseline.
struct CorpusRun {
    n_claims: usize,
    n_objects: usize,
    delta_batches: usize,
    full_fallbacks: usize,
    /// Mean over delta batches, seconds.
    delta_refit_s: f64,
    /// Mean over delta batches, seconds.
    publish_patch_s: f64,
    /// Mean over delta batches.
    touched_objects: f64,
    full_refit_s: f64,
    publish_rebuild_s: f64,
}

/// Stream the withheld tail through the delta path and measure it.
fn run_corpus(n_claims: usize) -> CorpusRun {
    let cfg = webscale(n_claims);
    let corpus = generate_webscale(&cfg, SEED);
    let ds_full = corpus.dataset;
    let n_total = ds_full.records().len();
    let n_tail = N_BATCHES * BATCH_CLAIMS;
    assert!(n_tail < n_total, "corpus must exceed the streamed tail");

    // The tail records as wire claims, before the prefix rebuild drops them.
    let batches: Vec<Vec<Claim>> = ds_full.records()[n_total - n_tail..]
        .chunks(BATCH_CLAIMS)
        .map(|chunk| {
            chunk
                .iter()
                .map(|r| Claim::Record {
                    object: ds_full.object_name(r.object).to_string(),
                    source: ds_full.source_name(r.source).to_string(),
                    value: ds_full.hierarchy().name(r.value).to_string(),
                })
                .collect()
        })
        .collect();

    let t0 = Instant::now();
    let mut server = TruthServer::new(
        record_prefix(&ds_full, n_total - n_tail),
        TdhConfig::default(),
        RefitPolicy::StalenessBound {
            max_touched_frac: 0.1,
        },
    );
    let bootstrap_s = t0.elapsed().as_secs_f64();
    let n_objects = server.dataset().n_objects();

    let mut delta_refit_s = 0.0;
    let mut publish_patch_s = 0.0;
    let mut touched_objects = 0usize;
    let mut delta_batches = 0usize;
    let mut full_fallbacks = 0usize;
    for batch in &batches {
        let report = server.ingest(batch).expect("streamed tail batch");
        let refit = report.refit.expect("StalenessBound refits every batch");
        match refit.kind {
            RefitKind::Delta => {
                let delta = refit.delta.expect("delta refits report their delta");
                delta_refit_s += refit.duration.as_secs_f64();
                publish_patch_s += refit.publish.as_secs_f64();
                touched_objects += delta.touched_objects;
                delta_batches += 1;
            }
            RefitKind::Full => full_fallbacks += 1,
        }
    }
    assert!(
        delta_batches > 0,
        "no batch took the delta path at {n_claims} claims"
    );

    // Baseline: a forced full fit + full publication of the grown corpus.
    let full = server.refit_now();
    let n = delta_batches as f64;
    println!(
        "  {n_claims} claims / {n_objects} objects: bootstrap {bootstrap_s:.2}s, \
         {delta_batches} delta batches ({full_fallbacks} full fallbacks), \
         mean delta refit {:.2}ms vs full {:.2}ms",
        delta_refit_s / n * 1e3,
        full.duration.as_secs_f64() * 1e3,
    );
    CorpusRun {
        n_claims,
        n_objects,
        delta_batches,
        full_fallbacks,
        delta_refit_s: delta_refit_s / n,
        publish_patch_s: publish_patch_s / n,
        touched_objects: touched_objects as f64 / n,
        full_refit_s: full.duration.as_secs_f64(),
        publish_rebuild_s: full.publish.as_secs_f64(),
    }
}

/// The incremental scenario at the requested scale.
pub fn incremental(scale: Scale) {
    let sizes: Vec<usize> = match scale {
        Scale::Paper => vec![10_000, 100_000, 1_000_000],
        Scale::Quick => vec![10_000, 40_000],
    };
    println!(
        "streaming {N_BATCHES} batches x {BATCH_CLAIMS} record claims per corpus \
         under StalenessBound(0.1)"
    );
    let runs: Vec<CorpusRun> = sizes.iter().map(|&n| run_corpus(n)).collect();

    let rows: Vec<MetricRow> = runs
        .iter()
        .map(|r| MetricRow {
            label: "delta-vs-full".into(),
            corpus: format!("webscale-{}", r.n_claims),
            metrics: vec![
                ("n_claims".into(), r.n_claims as f64),
                ("n_objects".into(), r.n_objects as f64),
                ("batch_claims".into(), BATCH_CLAIMS as f64),
                ("delta_batches".into(), r.delta_batches as f64),
                ("full_fallbacks".into(), r.full_fallbacks as f64),
                ("delta_refit_s".into(), r.delta_refit_s),
                ("publish_patch_s".into(), r.publish_patch_s),
                ("touched_objects".into(), r.touched_objects),
                ("full_refit_s".into(), r.full_refit_s),
                ("publish_rebuild_s".into(), r.publish_rebuild_s),
                ("refit_speedup".into(), r.full_refit_s / r.delta_refit_s),
                (
                    "publish_speedup".into(),
                    r.publish_rebuild_s / r.publish_patch_s,
                ),
            ],
        })
        .collect();

    print_table(
        &[
            "claims",
            "objects",
            "delta refit (ms)",
            "patch publish (ms)",
            "touched",
            "full refit (ms)",
            "rebuild publish (ms)",
            "refit speedup",
        ],
        &runs
            .iter()
            .map(|r| {
                vec![
                    r.n_claims.to_string(),
                    r.n_objects.to_string(),
                    format!("{:.3}", r.delta_refit_s * 1e3),
                    format!("{:.3}", r.publish_patch_s * 1e3),
                    format!("{:.1}", r.touched_objects),
                    format!("{:.3}", r.full_refit_s * 1e3),
                    format!("{:.3}", r.publish_rebuild_s * 1e3),
                    format!("{:.1}x", r.full_refit_s / r.delta_refit_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    save_checked(
        "incremental",
        &rows,
        &[
            "delta_refit_s",
            "full_refit_s",
            "publish_patch_s",
            "touched_objects",
        ],
    );

    if std::env::var("TDH_ASSERT_INCREMENTAL").is_ok() {
        // Near-flat per-batch delta time: within 1.5x of the smallest
        // corpus plus a 10 ms floor (the flat-view refresh keeps an
        // O(corpus) row-copy term, so exact flatness is off the table).
        let fastest = runs
            .iter()
            .map(|r| r.delta_refit_s)
            .fold(f64::INFINITY, f64::min);
        let slowest = runs.iter().map(|r| r.delta_refit_s).fold(0.0, f64::max);
        assert!(
            slowest <= 1.5 * fastest + 0.010,
            "delta refit not flat across corpus sizes: {:.1}ms at the largest \
             vs {:.1}ms at the smallest",
            slowest * 1e3,
            fastest * 1e3,
        );
        for r in &runs {
            assert!(
                r.publish_patch_s < r.publish_rebuild_s,
                "patch publication ({:.3}ms) must beat a state rebuild \
                 ({:.3}ms) at {} claims",
                r.publish_patch_s * 1e3,
                r.publish_rebuild_s * 1e3,
                r.n_claims,
            );
        }
        println!("  TDH_ASSERT_INCREMENTAL: flatness and patch-publication assertions passed");
    }
}
