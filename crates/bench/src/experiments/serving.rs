//! `serving` — not a paper figure: the `tdh-serve` subsystem end to end.
//!
//! Bootstraps a server on 85% of a corpus's records, snapshots it to disk,
//! reloads it into a fresh server, streams the remaining 15% through the
//! incremental engine (index append + warm-start refit), and compares the
//! warm refit against a cold fit of the same grown dataset. Also measures
//! in-process query throughput (truth lookups, per-source reliability,
//! top-k most-uncertain) and — the read-mostly serving case — concurrent
//! reader throughput while a writer ingests and refits, once over the
//! lock-free published `ServingState` path and once through a single
//! `Mutex<TruthServer>` (the pre-publish architecture every query used to
//! serialize on).
//!
//! `results/serving.json` fields (asserted by CI, enforced at write time by
//! `save_checked`): `bootstrap_iters`, `warm_iters`, `cold_iters`,
//! `warm_refit_s`, `cold_refit_s`, `iters_saved_ratio`, `queries_per_s`,
//! `latency_p50_us`, `latency_p95_us`, `latency_p99_us`, `snapshot_save_s`,
//! `snapshot_load_s`, `snapshot_bytes`, `batch_claims`, `wal_append_s`,
//! `recovery_replay_s`, `snapshot_v2_bytes`, `reader_threads`,
//! `concurrent_queries_per_s`, `mutex_queries_per_s`,
//! `concurrent_read_speedup`. The latency percentiles come from a
//! `tdh_obs::Histogram` fed one observation per in-process query.

use std::sync::Mutex;
use std::time::Instant;

use tdh_core::{TdhConfig, TdhModel};
use tdh_data::{Dataset, ObjectId};
use tdh_serve::{Claim, RefitPolicy, Snapshot, TruthServer};

use crate::harness::{birthplaces, print_table};
use crate::report::{save_checked, MetricRow};
use crate::Scale;

/// Rebuild `ds` with only its first `n_records` records (same hierarchy,
/// same entity interning order, gold labels intact) — the "what the server
/// had before the batch arrived" corpus.
pub(crate) fn record_prefix(ds: &Dataset, n_records: usize) -> Dataset {
    let mut out = Dataset::new(ds.hierarchy().clone());
    for o in ds.objects() {
        let no = out.intern_object(ds.object_name(o));
        if let Some(g) = ds.gold(o) {
            out.set_gold(no, g);
        }
    }
    for s in ds.sources() {
        out.intern_source(ds.source_name(s));
    }
    for w in ds.workers() {
        out.intern_worker(ds.worker_name(w));
    }
    for r in &ds.records()[..n_records] {
        out.add_record(r.object, r.source, r.value);
    }
    out
}

/// The serving scenario at the requested scale.
pub fn serving(scale: Scale) {
    let (queries, batch_share) = match scale {
        Scale::Paper => (200_000usize, 15usize),
        Scale::Quick => (40_000usize, 15usize),
    };
    let corpus = birthplaces(scale);
    let ds_full = corpus.dataset;
    let n_total = ds_full.records().len();
    let n_batch = n_total * batch_share / 100;
    let n_keep = n_total - n_batch;
    let ds0 = record_prefix(&ds_full, n_keep);
    println!(
        "[{}] {} records: bootstrap on {n_keep}, stream {n_batch} as one batch",
        corpus.name, n_total
    );

    // --- Bootstrap: cold fit. ---
    let t0 = Instant::now();
    let server = TruthServer::new(ds0, TdhConfig::default(), RefitPolicy::EveryBatch);
    let bootstrap_s = t0.elapsed().as_secs_f64();
    let bootstrap = server.last_refit().expect("bootstrap fits");

    // --- Snapshot persistence. ---
    let dir = crate::report::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("serving.tdhsnap");
    let t1 = Instant::now();
    server.snapshot().save(&path).expect("save snapshot");
    let snapshot_save_s = t1.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let t2 = Instant::now();
    let snap = Snapshot::load(&path).expect("load snapshot");
    let snapshot_load_s = t2.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);

    // --- Incremental ingestion + warm refit on the restored server. ---
    let mut restored =
        TruthServer::from_snapshot(snap, RefitPolicy::EveryBatch).expect("restore snapshot");
    let h = ds_full.hierarchy();
    let batch: Vec<Claim> = ds_full.records()[n_keep..]
        .iter()
        .map(|r| Claim::Record {
            object: ds_full.object_name(r.object).to_string(),
            source: ds_full.source_name(r.source).to_string(),
            value: h.name(r.value).to_string(),
        })
        .collect();
    let t3 = Instant::now();
    let report = restored.ingest(&batch).expect("ingest batch");
    let ingest_s = t3.elapsed().as_secs_f64();
    let refit = report.refit.expect("EveryBatch refits");
    assert!(refit.warm, "the post-batch refit must warm-start");

    // --- Cold reference: fresh fit of the same grown dataset. ---
    let mut cold = TdhModel::new(TdhConfig {
        warm_start: false,
        ..Default::default()
    });
    let t4 = Instant::now();
    cold.fit(restored.dataset());
    let cold_refit_s = t4.elapsed().as_secs_f64();
    let cold_iters = cold.fit_report().unwrap().iterations;
    if refit.iterations >= cold_iters {
        eprintln!(
            "warning: warm refit took {} iterations, cold fit {cold_iters} — \
             warm start bought nothing on this corpus",
            refit.iterations
        );
    }

    // --- Durability: WAL-before-ack ingest, crash, replay, checkpoint. ---
    // The same 15% batch streamed in chunks through a durable server, so
    // `wal_append_s` is the total ack-path WAL cost; then a simulated crash
    // (drop without checkpoint), a recovery that replays every chunk, and a
    // checkpoint that measures the binary v2 snapshot.
    let dur_dir = dir.join("serving-durable");
    let _ = std::fs::remove_dir_all(&dur_dir);
    let mut durable = TruthServer::create_durable(
        &dur_dir,
        record_prefix(&ds_full, n_keep),
        TdhConfig::default(),
        RefitPolicy::Manual,
    )
    .expect("create durable server");
    let mut wal_append_s = 0f64;
    let mut wal_batches = 0usize;
    for chunk in batch.chunks(1024) {
        let report = durable.ingest(chunk).expect("durable ingest");
        wal_append_s += report
            .wal
            .expect("durable ingest reports WAL time")
            .as_secs_f64();
        wal_batches += 1;
    }
    drop(durable); // crash: acked batches live only in the WAL
    let mut recovered =
        TruthServer::open(&dur_dir, RefitPolicy::Manual).expect("recover durable server");
    let recovery = recovered.recovery().expect("recovery report");
    assert_eq!(recovery.replayed_batches as usize, wal_batches);
    assert_eq!(
        recovered.dataset().records().len(),
        n_total,
        "recovery must restore every acked record"
    );
    let recovery_replay_s = recovery.replay.as_secs_f64();
    let checkpoint = recovered.checkpoint().expect("checkpoint");
    let snapshot_v2_bytes = checkpoint.snapshot_bytes;
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dur_dir);

    // --- Query throughput (in-process). ---
    let ds = restored.dataset();
    let object_names: Vec<String> = (0..ds.n_objects())
        .map(|i| ds.object_name(ObjectId::from_index(i)).to_string())
        .collect();
    let source_names: Vec<String> = ds
        .sources()
        .map(|s| ds.source_name(s).to_string())
        .collect();
    let latency = tdh_obs::Histogram::new();
    let t5 = Instant::now();
    let mut answered = 0u64;
    for q in 0..queries {
        let tq = Instant::now();
        match q % 10 {
            // 80% truth lookups, 10% reliability, 10% top-k.
            0..=7 => {
                if restored
                    .truth(&object_names[q % object_names.len()])
                    .is_some()
                {
                    answered += 1;
                }
            }
            8 => {
                if restored
                    .source_reliability(&source_names[q % source_names.len()])
                    .is_some()
                {
                    answered += 1;
                }
            }
            _ => {
                answered += restored.top_uncertain(10).len() as u64;
            }
        }
        // Nanosecond granularity: in-process lookups are sub-microsecond,
        // so µs buckets would collapse the whole distribution into zero.
        latency.record(u64::try_from(tq.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let query_s = t5.elapsed().as_secs_f64();
    let queries_per_s = queries as f64 / query_s.max(1e-12);
    assert!(answered > 0, "queries must be answerable");
    let quantile_us = |q: f64| latency.quantile(q).unwrap_or(0) as f64 / 1e3;
    let latency_p50_us = quantile_us(0.50);
    let latency_p95_us = quantile_us(0.95);
    let latency_p99_us = quantile_us(0.99);

    // --- Concurrent readers under ingestion: published vs mutex path. ---
    // The same read workload (90% truth lookups, 10% top-k) hammered by N
    // reader threads while a writer streams claim batches (each triggering
    // a warm refit). First over the lock-free published-state path, then
    // with every query taking the single writer mutex — the PR-4
    // architecture the publish-on-refit split replaces.
    let reader_threads = 4usize;
    let per_thread = (queries / reader_threads).max(1);
    let writer_batches: Vec<Vec<Claim>> = ds_full.records()[..64.min(n_total)]
        .chunks(16)
        .map(|chunk| {
            chunk
                .iter()
                .map(|r| Claim::Record {
                    object: ds_full.object_name(r.object).to_string(),
                    source: ds_full.source_name(r.source).to_string(),
                    value: h.name(r.value).to_string(),
                })
                .collect()
        })
        .collect();
    let names = &object_names;

    let state_reader = restored.reader();
    let t6 = Instant::now();
    let concurrent_s = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..reader_threads)
            .map(|t| {
                let reader = state_reader.clone();
                scope.spawn(move || {
                    let mut answered = 0u64;
                    for q in 0..per_thread {
                        let state = reader.load();
                        if q % 10 == 9 {
                            answered += state.top_uncertain(10).len() as u64;
                        } else if state
                            .truth(&names[(q * reader_threads + t) % names.len()])
                            .is_some()
                        {
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();
        let writer = scope.spawn(|| {
            for batch in &writer_batches {
                restored.ingest(batch).expect("writer batch");
            }
        });
        let total: u64 = readers
            .into_iter()
            .map(|handle| handle.join().expect("reader"))
            .sum();
        let elapsed = t6.elapsed().as_secs_f64();
        assert!(total > 0, "concurrent readers must be answered");
        writer.join().expect("writer");
        elapsed
    });
    let concurrent_queries_per_s = (reader_threads * per_thread) as f64 / concurrent_s.max(1e-12);

    let shared = Mutex::new(restored);
    let t7 = Instant::now();
    let mutex_s = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..reader_threads)
            .map(|t| {
                let shared = &shared;
                scope.spawn(move || {
                    let mut answered = 0u64;
                    for q in 0..per_thread {
                        let locked = shared.lock().expect("server mutex");
                        if q % 10 == 9 {
                            answered += locked.top_uncertain(10).len() as u64;
                        } else if locked
                            .truth(&names[(q * reader_threads + t) % names.len()])
                            .is_some()
                        {
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();
        let writer = scope.spawn(|| {
            for batch in &writer_batches {
                shared
                    .lock()
                    .expect("server mutex")
                    .ingest(batch)
                    .expect("writer batch");
            }
        });
        let total: u64 = readers
            .into_iter()
            .map(|handle| handle.join().expect("reader"))
            .sum();
        let elapsed = t7.elapsed().as_secs_f64();
        assert!(total > 0, "mutex-path readers must be answered");
        writer.join().expect("writer");
        elapsed
    });
    let mutex_queries_per_s = (reader_threads * per_thread) as f64 / mutex_s.max(1e-12);
    let concurrent_read_speedup = concurrent_queries_per_s / mutex_queries_per_s.max(1e-12);
    if concurrent_queries_per_s <= mutex_queries_per_s {
        eprintln!(
            "warning: published-state readers ({concurrent_queries_per_s:.0}/s) did not beat \
             the mutex path ({mutex_queries_per_s:.0}/s)"
        );
    }
    drop(shared);

    let warm_iters = refit.iterations;
    let iters_saved_ratio = if cold_iters > 0 {
        warm_iters as f64 / cold_iters as f64
    } else {
        f64::NAN
    };
    print_table(
        &["metric", "value"],
        &[
            vec![
                "bootstrap iters (cold)".into(),
                bootstrap.iterations.to_string(),
            ],
            vec!["bootstrap fit (s)".into(), format!("{bootstrap_s:.4}")],
            vec!["snapshot save (s)".into(), format!("{snapshot_save_s:.4}")],
            vec!["snapshot load (s)".into(), format!("{snapshot_load_s:.4}")],
            vec!["snapshot size (bytes)".into(), snapshot_bytes.to_string()],
            vec!["batch claims".into(), n_batch.to_string()],
            vec!["ingest + warm refit (s)".into(), format!("{ingest_s:.4}")],
            vec!["warm refit iters".into(), warm_iters.to_string()],
            vec!["cold refit iters".into(), cold_iters.to_string()],
            vec!["cold refit (s)".into(), format!("{cold_refit_s:.4}")],
            vec!["WAL append total (s)".into(), format!("{wal_append_s:.4}")],
            vec![
                "recovery replay (s)".into(),
                format!("{recovery_replay_s:.4}"),
            ],
            vec![
                "snapshot v2 size (bytes)".into(),
                snapshot_v2_bytes.to_string(),
            ],
            vec!["queries/s".into(), format!("{queries_per_s:.0}")],
            vec![
                "query latency p50/p95/p99 (µs)".into(),
                format!("{latency_p50_us:.2}/{latency_p95_us:.2}/{latency_p99_us:.2}"),
            ],
            vec!["reader threads".into(), reader_threads.to_string()],
            vec![
                "concurrent queries/s (published)".into(),
                format!("{concurrent_queries_per_s:.0}"),
            ],
            vec![
                "concurrent queries/s (mutex)".into(),
                format!("{mutex_queries_per_s:.0}"),
            ],
            vec![
                "concurrent read speedup".into(),
                format!("{concurrent_read_speedup:.2}x"),
            ],
        ],
    );

    let out = vec![MetricRow {
        label: "serving".into(),
        corpus: corpus.name.clone(),
        metrics: vec![
            ("bootstrap_iters".into(), bootstrap.iterations as f64),
            ("bootstrap_fit_s".into(), bootstrap_s),
            ("snapshot_save_s".into(), snapshot_save_s),
            ("snapshot_load_s".into(), snapshot_load_s),
            ("snapshot_bytes".into(), snapshot_bytes as f64),
            ("batch_claims".into(), n_batch as f64),
            ("ingest_s".into(), ingest_s),
            ("warm_iters".into(), warm_iters as f64),
            ("warm_refit_s".into(), refit.duration.as_secs_f64()),
            ("cold_iters".into(), cold_iters as f64),
            ("cold_refit_s".into(), cold_refit_s),
            ("iters_saved_ratio".into(), iters_saved_ratio),
            ("wal_append_s".into(), wal_append_s),
            ("recovery_replay_s".into(), recovery_replay_s),
            ("snapshot_v2_bytes".into(), snapshot_v2_bytes as f64),
            ("queries_per_s".into(), queries_per_s),
            ("latency_p50_us".into(), latency_p50_us),
            ("latency_p95_us".into(), latency_p95_us),
            ("latency_p99_us".into(), latency_p99_us),
            ("reader_threads".into(), reader_threads as f64),
            ("concurrent_queries_per_s".into(), concurrent_queries_per_s),
            ("mutex_queries_per_s".into(), mutex_queries_per_s),
            ("concurrent_read_speedup".into(), concurrent_read_speedup),
        ],
    }];
    save_checked(
        "serving",
        &out,
        &[
            "bootstrap_iters",
            "warm_iters",
            "cold_iters",
            "warm_refit_s",
            "cold_refit_s",
            "iters_saved_ratio",
            "queries_per_s",
            "latency_p50_us",
            "latency_p95_us",
            "latency_p99_us",
            "snapshot_save_s",
            "snapshot_load_s",
            "snapshot_bytes",
            "batch_claims",
            "wal_append_s",
            "recovery_replay_s",
            "snapshot_v2_bytes",
            "reader_threads",
            "concurrent_queries_per_s",
            "mutex_queries_per_s",
            "concurrent_read_speedup",
        ],
    );
}
