//! One runner per table/figure of the paper. See `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for recorded outcomes.

mod ablation;
mod crowdsourcing;
mod incremental;
mod inference;
mod performance;
mod serving;
mod sharding;

use crate::Scale;

/// All experiment ids: the paper's tables/figures in paper order, then the
/// repo's own scenarios (`ablation`, `scaling`, `serving`, `sharding`,
/// `incremental`).
pub const ALL: [&str; 19] = [
    "fig1",
    "table3",
    "fig5",
    "fig6",
    "fig7",
    "table4",
    "fig8",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig17",
    "table5",
    "table6",
    "ablation",
    "scaling",
    "serving",
    "sharding",
    "incremental",
];

/// Run one experiment by id. Panics on unknown ids (the CLI validates).
pub fn run(id: &str, scale: Scale) {
    println!("== {id} ({scale:?} scale) ==");
    match id {
        "fig1" => inference::fig1(scale),
        "table3" => inference::table3(scale),
        "fig5" => inference::fig5(scale),
        "table5" => inference::table5(scale),
        "table6" => inference::table6(scale),
        "fig6" => crowdsourcing::fig6(scale),
        "fig7" => crowdsourcing::fig7(scale),
        "table4" => crowdsourcing::table4(scale),
        "fig8" => crowdsourcing::fig8_to_10(scale),
        "fig11" => crowdsourcing::fig11(scale),
        "fig14" => crowdsourcing::fig14_to_16(scale),
        "fig17" => crowdsourcing::fig17(scale),
        "fig12" => performance::fig12(scale),
        "fig13" => performance::fig13(scale),
        "ablation" => ablation::ablation(scale),
        "scaling" => performance::scaling(scale),
        "serving" => serving::serving(scale),
        "sharding" => sharding::sharding(scale),
        "incremental" => incremental::incremental(scale),
        other => panic!("unknown experiment id {other}"),
    }
    println!();
}
