//! Performance experiments: Fig. 12 (execution time per round), Fig. 13
//! (UEAI-filter effectiveness under data scaling) and the repo's own
//! `scaling` scenario (per-phase EM timings vs thread count on a
//! paper-scale generated corpus).

use std::time::{Duration, Instant};

use tdh_core::{assign_exhaustive, EaiAssigner, TaskAssigner, TdhConfig, TdhModel, TruthDiscovery};
use tdh_crowd::{run_simulation, SimulationConfig, WorkerPool};
use tdh_data::ObservationIndex;

use crate::harness::{
    both_corpora, make_assigner, make_crowd_model, print_table, tdh_with_threads, SEED,
};
use crate::report::{save, save_checked, MetricRow};
use crate::Scale;
use tdh_datagen::{generate_webscale, WebScaleConfig};

/// The combinations Fig. 12 times (paper's selection).
const FIG12_COMBOS: [(&str, &str); 10] = [
    ("VOTE", "ME"),
    ("CRH", "ME"),
    ("POPACCU", "ME"),
    ("ACCU", "ME"),
    ("DOCS", "MB"),
    ("TDH", "EAI"),
    ("MDC", "ME"),
    ("LCA", "ME"),
    ("ASUMS", "ME"),
    ("LFC", "ME"),
];

fn mean(durations: &[Duration]) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    durations.iter().map(Duration::as_secs_f64).sum::<f64>() / durations.len() as f64
}

/// Fig. 12 — average execution time per crowdsourcing round, split into
/// truth inference (TDI) and task assignment (TA).
pub fn fig12(scale: Scale) {
    let rounds = match scale {
        Scale::Paper => 5,
        Scale::Quick => 2,
    };
    let mut out = Vec::new();
    for corpus in both_corpora(scale) {
        println!(
            "[{}] mean seconds per round over {rounds} rounds:",
            corpus.name
        );
        let mut rows = Vec::new();
        for (model_name, assigner_name) in FIG12_COMBOS {
            let mut ds = corpus.dataset.clone();
            let mut pool = WorkerPool::uniform(&mut ds, 10, 0.75, SEED);
            let mut model = make_crowd_model(model_name);
            let mut assigner = make_assigner(assigner_name);
            let cfg = SimulationConfig {
                rounds,
                tasks_per_worker: 5,
                ..Default::default()
            };
            let result =
                run_simulation(&mut ds, model.as_mut(), assigner.as_mut(), &mut pool, &cfg);
            let infer: Vec<Duration> = result.rounds.iter().map(|r| r.infer_time).collect();
            let assign: Vec<Duration> = result.rounds.iter().map(|r| r.assign_time).collect();
            let (ti, ta) = (mean(&infer), mean(&assign));
            rows.push(vec![
                format!("{model_name}+{assigner_name}"),
                format!("{ti:.3}"),
                format!("{ta:.3}"),
                format!("{:.3}", ti + ta),
            ]);
            out.push(MetricRow {
                label: format!("{model_name}+{assigner_name}"),
                corpus: corpus.name.clone(),
                metrics: vec![("inference_s".into(), ti), ("assignment_s".into(), ta)],
            });
        }
        print_table(
            &[
                "combination",
                "inference (s)",
                "assignment (s)",
                "total (s)",
            ],
            &rows,
        );
        println!();
    }
    save("fig12", &out);
}

/// Fig. 13 — task-assignment time with and without the UEAI filter, scaling
/// each corpus by duplication (factors 1, 5, 10, 15).
pub fn fig13(scale: Scale) {
    let factors: &[usize] = match scale {
        Scale::Paper => &[1, 5, 10, 15],
        Scale::Quick => &[1, 3, 5],
    };
    let mut out = Vec::new();
    for corpus in both_corpora(scale) {
        println!(
            "[{}] EAI assignment time (10 workers × 5 tasks):",
            corpus.name
        );
        let mut rows = Vec::new();
        for &factor in factors {
            let mut ds = corpus.dataset.duplicated(factor);
            let pool = WorkerPool::uniform(&mut ds, 10, 0.75, SEED);
            let idx = ObservationIndex::build(&ds);
            let mut model = TdhModel::new(TdhConfig::default());
            model.infer(&ds, &idx);

            let mut pruned = EaiAssigner::new();
            let t0 = Instant::now();
            let _ = pruned.assign(&model, &ds, &idx, pool.ids(), 5);
            let with_filter = t0.elapsed();
            let pruned_evals = pruned.eai_evaluations;

            let t1 = Instant::now();
            let (_, full_evals) = assign_exhaustive(&model, &ds, &idx, pool.ids(), 5);
            let without_filter = t1.elapsed();

            let saved =
                100.0 * (1.0 - with_filter.as_secs_f64() / without_filter.as_secs_f64().max(1e-12));
            rows.push(vec![
                format!("{factor}"),
                format!("{:.4}", with_filter.as_secs_f64()),
                format!("{:.4}", without_filter.as_secs_f64()),
                format!("{saved:.0}%"),
                format!("{pruned_evals}/{full_evals}"),
            ]);
            out.push(MetricRow {
                label: format!("scale-{factor}"),
                corpus: corpus.name.clone(),
                metrics: vec![
                    ("with_filter_s".into(), with_filter.as_secs_f64()),
                    ("without_filter_s".into(), without_filter.as_secs_f64()),
                    ("eai_evals_pruned".into(), pruned_evals as f64),
                    ("eai_evals_full".into(), full_evals as f64),
                ],
            });
        }
        print_table(
            &[
                "scale",
                "with filter (s)",
                "w/o filter (s)",
                "time saved",
                "EAI evals",
            ],
            &rows,
        );
        println!();
    }
    save("fig13", &out);
}

/// Thread counts the `scaling` scenario sweeps.
const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// JSON fields downstream consumers (CI, regression diffs) assert on; the
/// run refuses to land `results/scaling.json` without every one of them.
const SCALING_FIELDS: [&str; 9] = [
    "build_s",
    "flatten_s",
    "e_step_s",
    "m_step_s",
    "fit_s",
    "speedup",
    "e_step_speedup",
    "truth_mismatches",
    "objects_flipped",
];

/// `scaling` — not a paper figure: wall-clock time and speedup of one full
/// TDH fit as the worker-pool thread count grows, on a **paper-scale
/// web corpus** ([`WebScaleConfig::paper`], one million claims; the quick
/// scale runs the ~100k-claim variant), broken down per phase: observation-
/// index build, index flattening, E-step and M-step (the fit's pool is
/// spawned once and reused across all EM iterations, so phase times are
/// directly comparable across thread counts).
///
/// The timings land in `results/scaling.json` via [`save_checked`] — the
/// run aborts rather than write a file missing any of [`SCALING_FIELDS`].
/// The scenario also cross-checks the sharding contract: every thread count
/// should predict the truths the sequential path predicts. Per-row
/// `truth_mismatches` counts divergences from the 1-thread reference, and a
/// final `truth-flips` row reports `objects_flipped` — the number of objects
/// whose argmax differed under *any* swept thread count.
///
/// With `TDH_ASSERT_SCALING` set (the CI scaling leg), the run additionally
/// asserts the 4-thread E-step is not slower than the 1-thread E-step beyond
/// a 10% tolerance — on a single-core runner parallel speedup is physically
/// unavailable, so this is the regression guard that one-barrier-per-phase
/// coordination stays cheap; on real multicore hardware it is satisfied with
/// a wide margin by the actual speedup.
pub fn scaling(scale: Scale) {
    let (cfg, reps) = match scale {
        Scale::Paper => (WebScaleConfig::paper(), 2),
        Scale::Quick => (WebScaleConfig::quick(), 2),
    };
    let t_gen = Instant::now();
    let corpus = generate_webscale(&cfg, SEED);
    let ds = &corpus.dataset;
    // Reference index for the fits: identical to every threaded build.
    let idx = ObservationIndex::build(ds);
    println!(
        "[{}] TDH seconds per phase vs pool threads ({} objects, {} records, {} answers, \
         generated in {:.1}s, best of {reps}; {} hardware threads):",
        corpus.name,
        ds.n_objects(),
        ds.records().len(),
        ds.answers().len(),
        t_gen.elapsed().as_secs_f64(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    let mut out = Vec::new();
    let mut rows = Vec::new();
    let mut baseline = f64::NAN;
    let mut e_baseline = f64::NAN;
    let mut e_by_threads = Vec::new();
    let mut reference_truths: Option<Vec<_>> = None;
    let mut flipped = vec![false; ds.n_objects()];
    for n_threads in SCALING_THREADS {
        // Index build, timed separately from the fit.
        let mut build_s = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let built = ObservationIndex::build_threaded(ds, n_threads);
            build_s = build_s.min(t0.elapsed().as_secs_f64());
            // Keep the build observable so it cannot be optimized away.
            assert_eq!(built.n_objects(), ds.n_objects());
        }
        let mut best = f64::INFINITY;
        let mut phase = None;
        let mut truths = None;
        for _ in 0..reps {
            let mut model = tdh_with_threads(n_threads);
            let t0 = Instant::now();
            let est = model.infer(ds, &idx);
            let fit_s = t0.elapsed().as_secs_f64();
            if fit_s < best {
                best = fit_s;
                phase = model.phase_timings();
            }
            truths = Some(est.truths);
        }
        let truths = truths.expect("reps >= 1");
        let phase = phase.expect("infer records phase timings");
        let (e_step_s, m_step_s) = (phase.e_step.as_secs_f64(), phase.m_step.as_secs_f64());
        // Predicted-truth agreement with the sequential run is part of the
        // sharding contract, but near-tie argmax flips under ~1e-12 FP
        // regrouping are possible in principle — report mismatches as a
        // metric (and loudly) rather than aborting the whole run.
        let mismatches = match &reference_truths {
            None => {
                baseline = best;
                e_baseline = e_step_s;
                let accuracy = truths
                    .iter()
                    .zip(&corpus.truths)
                    .filter(|&(a, b)| *a == Some(*b))
                    .count() as f64
                    / ds.n_objects().max(1) as f64;
                println!(
                    "  (sequential TDH accuracy on {}: {accuracy:.3})",
                    corpus.name
                );
                reference_truths = Some(truths);
                0
            }
            Some(reference) => {
                let mut n = 0;
                for (oi, (a, b)) in reference.iter().zip(&truths).enumerate() {
                    if a != b {
                        n += 1;
                        flipped[oi] = true;
                    }
                }
                n
            }
        };
        if mismatches > 0 {
            eprintln!(
                "warning: {n_threads}-thread fit diverged from sequential truths on \
                 {mismatches} objects (near-tie argmax flips)"
            );
        }
        let speedup = baseline / best;
        let e_step_speedup = e_baseline / e_step_s;
        e_by_threads.push((n_threads, e_step_s));
        let flatten_s = phase.flatten.as_secs_f64();
        rows.push(vec![
            format!("{n_threads}"),
            format!("{build_s:.4}"),
            format!("{flatten_s:.4}"),
            format!("{e_step_s:.4}"),
            format!("{m_step_s:.4}"),
            format!("{best:.4}"),
            format!("{speedup:.2}x"),
            format!("{e_step_speedup:.2}x"),
            format!("{mismatches}"),
        ]);
        out.push(MetricRow {
            label: format!("threads-{n_threads}"),
            corpus: corpus.name.clone(),
            metrics: vec![
                ("build_s".into(), build_s),
                ("flatten_s".into(), flatten_s),
                ("e_step_s".into(), e_step_s),
                ("m_step_s".into(), m_step_s),
                ("fit_s".into(), best),
                ("speedup".into(), speedup),
                ("e_step_speedup".into(), e_step_speedup),
                ("truth_mismatches".into(), mismatches as f64),
            ],
        });
    }
    print_table(
        &[
            "threads",
            "build (s)",
            "flatten (s)",
            "E-step (s)",
            "M-step (s)",
            "fit (s)",
            "speedup",
            "E speedup",
            "truth mismatches",
        ],
        &rows,
    );
    let objects_flipped = flipped.iter().filter(|&&f| f).count();
    println!("  objects whose argmax flipped under any thread count: {objects_flipped}");
    println!();
    out.push(MetricRow {
        label: "truth-flips".into(),
        corpus: corpus.name.clone(),
        metrics: vec![("objects_flipped".into(), objects_flipped as f64)],
    });
    save_checked("scaling", &out, &SCALING_FIELDS);
    if std::env::var("TDH_ASSERT_SCALING").is_ok() {
        let e1 = e_by_threads
            .iter()
            .find(|&&(t, _)| t == 1)
            .expect("sweep includes 1 thread")
            .1;
        let e4 = e_by_threads
            .iter()
            .find(|&&(t, _)| t == 4)
            .expect("sweep includes 4 threads")
            .1;
        assert!(
            e4 <= e1 * 1.10,
            "4-thread E-step ({e4:.4}s) slower than 1-thread ({e1:.4}s) beyond 10% tolerance"
        );
        println!("  TDH_ASSERT_SCALING: 4-thread E-step within tolerance of 1-thread ✓");
    }
}
