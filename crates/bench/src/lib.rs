//! The experiment harness: one runner per table/figure of the paper.
//!
//! Every runner regenerates the corresponding artefact on the calibrated
//! synthetic corpora (see `DESIGN.md` §3 for the substitutions), prints a
//! human-readable table/series to stdout, and writes machine-readable JSON
//! to `results/<id>.json` so `EXPERIMENTS.md` can cite exact numbers.
//!
//! ```text
//! cargo run --release -p tdh-bench --bin experiments -- table3
//! cargo run --release -p tdh-bench --bin experiments -- all --quick
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod report;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale corpora (BirthPlaces ≈ 6k objects, Heritages ≈ 785).
    Paper,
    /// Reduced corpora and round counts for smoke runs and CI.
    Quick,
}

impl Scale {
    /// Shrink a round count under `Quick`.
    pub fn rounds(self, full: usize) -> usize {
        match self {
            Scale::Paper => full,
            Scale::Quick => (full / 5).max(2),
        }
    }
}
