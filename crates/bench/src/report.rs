//! Machine-readable experiment outputs (`results/<id>.json`).

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Where experiment outputs land (workspace-relative `results/`).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("results");
    p
}

/// Serialise `payload` to `results/<id>.json`.
pub fn save<T: Serialize>(id: &str, payload: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(payload) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {path:?}: {e}");
            } else {
                println!("  → saved {path:?}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {id}: {e}"),
    }
}

/// A generic metric row for tabular experiments.
#[derive(Debug, Clone, Serialize)]
pub struct MetricRow {
    /// Row label (algorithm or combo).
    pub label: String,
    /// Corpus the row was measured on.
    pub corpus: String,
    /// Named metric values.
    pub metrics: Vec<(String, f64)>,
}

/// A labelled numeric series (round → value), for the figure experiments.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Series label (e.g. "TDH+EAI").
    pub label: String,
    /// Corpus the series was measured on.
    pub corpus: String,
    /// X values (usually round numbers).
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_workspace_relative() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn save_roundtrip() {
        let row = MetricRow {
            label: "TDH".into(),
            corpus: "test".into(),
            metrics: vec![("accuracy".into(), 0.9)],
        };
        save("self-test", &vec![row]);
        let path = results_dir().join("self-test.json");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("accuracy"));
        let _ = std::fs::remove_file(path);
    }
}
