//! Machine-readable experiment outputs (`results/<id>.json`).
//!
//! Serialisation is a small hand-rolled JSON emitter rather than
//! serde + serde_json: the build environment is offline (see
//! `vendor/README.md`) and the two payload shapes below are all the
//! harness ever writes.

use std::fs;
use std::path::PathBuf;

/// Types the harness can write to `results/` as JSON.
pub trait ToJson {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// This value's JSON encoding.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        // JSON has no NaN/Infinity; null keeps the file parseable.
        out.push_str("null");
    }
}

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        push_json_f64(out, *self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        push_json_str(out, self);
    }
}

impl ToJson for (String, f64) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        push_json_str(out, &self.0);
        out.push_str(", ");
        push_json_f64(out, self.1);
        out.push(']');
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n  ");
            } else {
                out.push_str("\n  ");
            }
            item.write_json(out);
        }
        if !self.is_empty() {
            out.push('\n');
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

/// Where experiment outputs land (workspace-relative `results/`).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("results");
    p
}

/// Serialise `payload` to `results/<id>.json`.
pub fn save<T: ToJson + ?Sized>(id: &str, payload: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{id}.json"));
    if let Err(e) = fs::write(&path, payload.to_json()) {
        eprintln!("warning: cannot write {path:?}: {e}");
    } else {
        println!("  → saved {path:?}");
    }
}

/// Serialise metric rows to `results/<id>.json`, **failing loudly** when the
/// payload is missing a field a downstream consumer asserts on.
///
/// [`save`] warns and keeps going on trouble, which is right for the figure
/// scenarios — a missing plot is annoying, not wrong. Scenarios whose JSON
/// is load-bearing (CI greps `scaling.json` for per-phase fields and
/// regression-diffs it) must not be able to land a file that silently lost a
/// field to a refactor: every name in `required` must appear as a metric in
/// at least one row, and the write itself must succeed, or the bench panics.
pub fn save_checked(id: &str, rows: &[MetricRow], required: &[&str]) {
    for field in required {
        assert!(
            rows.iter()
                .any(|r| r.metrics.iter().any(|(k, _)| k == field)),
            "results/{id}.json would land without its asserted field {field:?} — \
             a consumer greps for it, refusing to write"
        );
    }
    let dir = results_dir();
    fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
    let path = dir.join(format!("{id}.json"));
    fs::write(&path, rows.to_json()).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("  → saved {path:?} ({} asserted fields)", required.len());
}

/// A generic metric row for tabular experiments.
#[derive(Debug, Clone)]
pub struct MetricRow {
    /// Row label (algorithm or combo).
    pub label: String,
    /// Corpus the row was measured on.
    pub corpus: String,
    /// Named metric values.
    pub metrics: Vec<(String, f64)>,
}

impl ToJson for MetricRow {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"label\": ");
        push_json_str(out, &self.label);
        out.push_str(", \"corpus\": ");
        push_json_str(out, &self.corpus);
        out.push_str(", \"metrics\": ");
        self.metrics.write_json(out);
        out.push('}');
    }
}

/// A labelled numeric series (round → value), for the figure experiments.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (e.g. "TDH+EAI").
    pub label: String,
    /// Corpus the series was measured on.
    pub corpus: String,
    /// X values (usually round numbers).
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

impl ToJson for Series {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"label\": ");
        push_json_str(out, &self.label);
        out.push_str(", \"corpus\": ");
        push_json_str(out, &self.corpus);
        out.push_str(", \"x\": ");
        self.x.write_json(out);
        out.push_str(", \"y\": ");
        self.y.write_json(out);
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_workspace_relative() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn json_escapes_and_non_finite_values() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, r#""a\"b\\c\nd""#);
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(1.5f64.to_json(), "1.5");
    }

    #[test]
    #[should_panic(expected = "asserted field \"e_step_s\"")]
    fn save_checked_refuses_missing_fields() {
        let row = MetricRow {
            label: "threads-1".into(),
            corpus: "test".into(),
            metrics: vec![("fit_s".into(), 1.0)],
        };
        save_checked("self-test-checked", &[row], &["fit_s", "e_step_s"]);
    }

    #[test]
    fn save_checked_writes_when_fields_present() {
        let row = MetricRow {
            label: "threads-1".into(),
            corpus: "test".into(),
            metrics: vec![("fit_s".into(), 1.0), ("e_step_s".into(), 0.5)],
        };
        save_checked("self-test-checked-ok", &[row], &["fit_s", "e_step_s"]);
        let path = results_dir().join("self-test-checked-ok.json");
        assert!(std::fs::read_to_string(&path).unwrap().contains("e_step_s"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn save_roundtrip() {
        let row = MetricRow {
            label: "TDH".into(),
            corpus: "test".into(),
            metrics: vec![("accuracy".into(), 0.9)],
        };
        save("self-test", &vec![row]);
        let path = results_dir().join("self-test.json");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("accuracy"));
        let _ = std::fs::remove_file(path);
    }
}
