//! CLI entry point: `experiments <id>... [--quick]`.
//!
//! Ids: fig1, table3, fig5, fig6, fig7, table4, fig8, fig11, fig12, fig13,
//! fig14, fig17, table5, table6, ablation, scaling, serving, sharding, or
//! `all`.

use tdh_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Paper
    };
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if ids.is_empty() {
        eprintln!("usage: experiments <id>... [--quick]");
        eprintln!("ids: {} or all", experiments::ALL.join(", "));
        std::process::exit(2);
    }
    for id in ids {
        if id == "all" {
            for e in experiments::ALL {
                experiments::run(e, scale);
            }
        } else if experiments::ALL.contains(&id) {
            experiments::run(id, scale);
        } else {
            eprintln!(
                "unknown experiment id {id}; known: {}",
                experiments::ALL.join(", ")
            );
            std::process::exit(2);
        }
    }
}
