//! Corpus construction and algorithm registries shared by the experiments.

use std::time::{Duration, Instant};

use tdh_baselines::{
    Accu, Asums, Crh, Docs, Lca, Lfc, MbAssigner, Mdc, MeAssigner, PopAccu, Qasca, Vote,
};
use tdh_core::{
    EaiAssigner, ProbabilisticCrowdModel, TaskAssigner, TdhConfig, TdhModel, TruthDiscovery,
    TruthEstimate,
};
use tdh_crowd::UniformAdapter;
use tdh_data::{Dataset, ObservationIndex};
use tdh_datagen::{
    generate_birthplaces, generate_heritages, BirthPlacesConfig, Corpus, HeritagesConfig,
};
use tdh_eval::{single_truth_report_with_index, SingleTruthReport};

use crate::Scale;

/// Base RNG seed for all experiments (results are deterministic per scale).
pub const SEED: u64 = 20190326; // EDBT 2019 opening day

/// Build the BirthPlaces stand-in at the requested scale.
pub fn birthplaces(scale: Scale) -> Corpus {
    let cfg = match scale {
        Scale::Paper => BirthPlacesConfig::default(),
        Scale::Quick => BirthPlacesConfig {
            n_objects: 600,
            hierarchy_nodes: 800,
        },
    };
    generate_birthplaces(&cfg, SEED)
}

/// Build the Heritages stand-in at the requested scale.
pub fn heritages(scale: Scale) -> Corpus {
    let cfg = match scale {
        Scale::Paper => HeritagesConfig::default(),
        Scale::Quick => HeritagesConfig {
            n_objects: 200,
            n_sources: 400,
            n_claims: 1_200,
            hierarchy_nodes: 400,
        },
    };
    generate_heritages(&cfg, SEED + 1)
}

/// The two corpora, in the paper's column order.
pub fn both_corpora(scale: Scale) -> Vec<Corpus> {
    vec![birthplaces(scale), heritages(scale)]
}

/// Names of the single-truth inference algorithms in Table 3 order.
pub const INFERENCE_ALGORITHMS: [&str; 10] = [
    "TDH", "VOTE", "LCA", "DOCS", "ASUMS", "MDC", "ACCU", "POPACCU", "LFC", "CRH",
];

/// A TDH model with an explicit E-step thread count (the `scaling` scenario
/// sweeps this). Every other entry point builds TDH via
/// [`TdhConfig::default`], whose `n_threads = 0` resolves to the
/// `TDH_N_THREADS` environment variable (CI pins it to 1 for the sequential
/// leg) or the machine's available parallelism.
pub fn tdh_with_threads(n_threads: usize) -> TdhModel {
    TdhModel::new(TdhConfig {
        n_threads,
        // Every scaling rep fits a fresh model exactly once, so retaining
        // warm-start parameters would only add an exported parameter copy
        // inside the timed region.
        warm_start: false,
        ..Default::default()
    })
}

/// Instantiate an inference algorithm by its paper name.
pub fn make_inference(name: &str) -> Box<dyn TruthDiscovery> {
    match name {
        "TDH" => Box::new(TdhModel::new(TdhConfig::default())),
        "VOTE" => Box::new(Vote),
        "LCA" => Box::new(Lca::default()),
        "DOCS" => Box::new(Docs::default()),
        "ASUMS" => Box::new(Asums::default()),
        "MDC" => Box::new(Mdc::default()),
        "ACCU" => Box::new(Accu::default()),
        "POPACCU" => Box::new(PopAccu::default()),
        "LFC" => Box::new(Lfc::default()),
        "CRH" => Box::new(Crh::default()),
        other => panic!("unknown inference algorithm {other}"),
    }
}

/// Instantiate an inference algorithm as a crowd model (native for the
/// probabilistic ones, [`UniformAdapter`]-wrapped otherwise).
pub fn make_crowd_model(name: &str) -> Box<dyn ProbabilisticCrowdModel> {
    match name {
        "TDH" => Box::new(TdhModel::new(TdhConfig::default())),
        "LCA" => Box::new(Lca::default()),
        "DOCS" => Box::new(Docs::default()),
        "ACCU" => Box::new(Accu::default()),
        "POPACCU" => Box::new(PopAccu::default()),
        "VOTE" => Box::new(UniformAdapter::new(Vote)),
        "ASUMS" => Box::new(UniformAdapter::new(Asums::default())),
        "MDC" => Box::new(UniformAdapter::new(Mdc::default())),
        "LFC" => Box::new(UniformAdapter::new(Lfc::default())),
        "CRH" => Box::new(UniformAdapter::new(Crh::default())),
        other => panic!("unknown crowd model {other}"),
    }
}

/// Instantiate a task assigner by its paper name.
pub fn make_assigner(name: &str) -> Box<dyn TaskAssigner> {
    match name {
        "EAI" => Box::new(EaiAssigner::new()),
        "QASCA" => Box::new(Qasca::new(SEED)),
        "ME" => Box::new(MeAssigner),
        "MB" => Box::new(MbAssigner),
        other => panic!("unknown assigner {other}"),
    }
}

/// The valid inference × assignment combinations of Table 4 (`-` cells of
/// the paper are absent here).
pub fn table4_combos() -> Vec<(&'static str, &'static str)> {
    vec![
        ("TDH", "EAI"),
        ("TDH", "QASCA"),
        ("TDH", "ME"),
        ("DOCS", "MB"),
        ("DOCS", "QASCA"),
        ("DOCS", "ME"),
        ("LCA", "QASCA"),
        ("LCA", "ME"),
        ("POPACCU", "QASCA"),
        ("POPACCU", "ME"),
        ("ACCU", "QASCA"),
        ("ACCU", "ME"),
        ("ASUMS", "ME"),
        ("CRH", "ME"),
        ("MDC", "ME"),
        ("LFC", "ME"),
        ("VOTE", "ME"),
    ]
}

/// One inference run with timing.
pub struct InferenceRun {
    /// Algorithm name.
    pub name: &'static str,
    /// The quality report against the gold standard.
    pub report: SingleTruthReport,
    /// Wall-clock inference time.
    pub time: Duration,
    /// The raw estimate (kept for downstream analyses).
    pub estimate: TruthEstimate,
}

/// Run one algorithm on a dataset and score it.
pub fn run_inference(name: &str, ds: &Dataset, idx: &ObservationIndex) -> InferenceRun {
    let mut algo = make_inference(name);
    let t0 = Instant::now();
    let estimate = algo.infer(ds, idx);
    let time = t0.elapsed();
    let report = single_truth_report_with_index(ds, idx, &estimate.truths);
    InferenceRun {
        name: algo.name(),
        report,
        time,
        estimate,
    }
}

/// Render a fixed-width table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_all_names() {
        for name in INFERENCE_ALGORITHMS {
            assert_eq!(make_inference(name).name(), name);
            assert_eq!(make_crowd_model(name).name(), name);
        }
        for a in ["EAI", "QASCA", "ME", "MB"] {
            assert_eq!(make_assigner(a).name(), a);
        }
    }

    #[test]
    fn table4_combos_are_valid() {
        for (m, a) in table4_combos() {
            let _ = make_crowd_model(m);
            let _ = make_assigner(a);
        }
    }

    #[test]
    fn quick_corpora_build() {
        let b = birthplaces(Scale::Quick);
        let h = heritages(Scale::Quick);
        assert!(b.dataset.n_objects() > 0);
        assert!(h.dataset.n_sources() > 100);
    }
}
