//! Upgrading a plain inference algorithm into a crowd model.

use tdh_baselines::common::{bayes_posterior, WorkerAccuracy};
use tdh_core::{ProbabilisticCrowdModel, TruthDiscovery, TruthEstimate};
use tdh_data::{Dataset, ObjectId, ObservationIndex, WorkerId};

/// Wraps any [`TruthDiscovery`] algorithm into a [`ProbabilisticCrowdModel`]
/// by pairing its confidence output with a symmetric-error worker model
/// (per-worker accuracy estimated from agreement with the current truths).
///
/// This is what lets VOTE, CRH, ASUMS, MDC, LFC and LTM participate in the
/// crowdsourcing loop (always with the ME assigner, as in Table 4): the
/// assigners only consume the [`ProbabilisticCrowdModel`] surface.
#[derive(Debug, Clone)]
pub struct UniformAdapter<T> {
    inner: T,
    confidences: Vec<Vec<f64>>,
    workers: WorkerAccuracy,
}

impl<T: TruthDiscovery> UniformAdapter<T> {
    /// Wrap an algorithm.
    pub fn new(inner: T) -> Self {
        UniformAdapter {
            inner,
            confidences: Vec::new(),
            workers: WorkerAccuracy::default(),
        }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: TruthDiscovery> TruthDiscovery for UniformAdapter<T> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn infer(&mut self, ds: &Dataset, idx: &ObservationIndex) -> TruthEstimate {
        let est = self.inner.infer(ds, idx);
        self.confidences = est.confidences.clone();
        self.workers = WorkerAccuracy::estimate(idx, &est.truths);
        est
    }
}

impl<T: TruthDiscovery> ProbabilisticCrowdModel for UniformAdapter<T> {
    fn confidence(&self, o: ObjectId) -> &[f64] {
        &self.confidences[o.index()]
    }

    fn worker_exact_prob(&self, w: WorkerId) -> f64 {
        self.workers.accuracy(w)
    }

    fn answer_likelihood(&self, idx: &ObservationIndex, o: ObjectId, w: WorkerId, c: u32) -> f64 {
        let k = idx.view(o).n_candidates();
        let mu = &self.confidences[o.index()];
        (0..k as u32)
            .map(|t| self.workers.likelihood(w, k, c, t) * mu[t as usize])
            .sum()
    }

    fn posterior_given_answer(
        &self,
        _idx: &ObservationIndex,
        o: ObjectId,
        w: WorkerId,
        c: u32,
    ) -> Vec<f64> {
        bayes_posterior(&self.confidences[o.index()], &self.workers, w, c)
    }

    fn evidence_weight(&self, o: ObjectId) -> f64 {
        self.confidences[o.index()].len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_baselines::Vote;
    use tdh_hierarchy::HierarchyBuilder;

    #[test]
    fn adapter_exposes_vote_confidences() {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        b.add_path(&["X", "B"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("o");
        let a = ds.hierarchy().node_by_name("A").unwrap();
        let bb = ds.hierarchy().node_by_name("B").unwrap();
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let s3 = ds.intern_source("s3");
        ds.add_record(o, s1, a);
        ds.add_record(o, s2, a);
        ds.add_record(o, s3, bb);
        let idx = ObservationIndex::build(&ds);
        let mut m = UniformAdapter::new(Vote);
        let est = m.infer(&ds, &idx);
        assert_eq!(est.truths[0], Some(a));
        let ai = idx.view(o).cand_index(a).unwrap() as usize;
        assert!((m.confidence(o)[ai] - 2.0 / 3.0).abs() < 1e-12);
        // Surfaces behave like distributions.
        let w = WorkerId(0);
        let total: f64 = (0..2).map(|c| m.answer_likelihood(&idx, o, w, c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let post = m.posterior_given_answer(&idx, o, w, ai as u32);
        assert!(post[ai] > m.confidence(o)[ai]);
    }
}
