//! Simulated crowd workers.
//!
//! The paper's §5 settings, verbatim: "each simulated worker answers a
//! question correctly with its own probability `p_w` and randomly selects an
//! answer from the candidate values with probability `1 − p_w`. We sampled
//! the probability `p_w` from a uniform distribution ranging from
//! `π_p − 0.05` to `π_p + 0.05` where the default value of `π_p` is 0.75."
//!
//! [`WorkerPool::human_annotators`] and [`WorkerPool::amt`] model the §5.5 /
//! §5.6 populations: fewer/more workers with broader reliability spreads,
//! and a *familiarity* discount for corpora whose answers are obscure
//! (Heritages converges slower than BirthPlaces with real humans).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdh_data::{Dataset, ObjectId, ObservationIndex, WorkerId};
use tdh_eval::mapped_gold;
use tdh_hierarchy::NodeId;

/// One simulated worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerProfile {
    /// Probability of answering the (candidate-mapped) truth.
    pub p_correct: f64,
}

/// A pool of simulated workers bound to a dataset's worker id space.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    profiles: Vec<WorkerProfile>,
    ids: Vec<WorkerId>,
    rng: StdRng,
}

impl WorkerPool {
    /// The paper's default population: `n` workers with
    /// `p_w ~ U(π_p − 0.05, π_p + 0.05)`.
    pub fn uniform(ds: &mut Dataset, n: usize, pi_p: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_0001);
        let profiles = (0..n)
            .map(|_| WorkerProfile {
                p_correct: (pi_p + (rng.random::<f64>() - 0.5) * 0.1).clamp(0.0, 1.0),
            })
            .collect();
        Self::register(ds, profiles, rng)
    }

    /// §5.5's human annotators: 10 workers whose reliability depends on how
    /// familiar the corpus is (`familiarity ∈ [0, 1]` scales a base 0.85
    /// reliability; BirthPlaces ≈ 1.0, Heritages ≈ 0.75).
    pub fn human_annotators(ds: &mut Dataset, n: usize, familiarity: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_0002);
        let base = 0.85 * familiarity.clamp(0.1, 1.0);
        let profiles = (0..n)
            .map(|_| WorkerProfile {
                p_correct: (base + (rng.random::<f64>() - 0.5) * 0.15).clamp(0.05, 0.98),
            })
            .collect();
        Self::register(ds, profiles, rng)
    }

    /// §5.6's AMT population: `n` workers with widely heterogeneous
    /// reliabilities (commercial platforms mix experts with spammers).
    pub fn amt(ds: &mut Dataset, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_0003);
        let profiles = (0..n)
            .map(|_| WorkerProfile {
                p_correct: 0.4 + 0.55 * rng.random::<f64>(),
            })
            .collect();
        Self::register(ds, profiles, rng)
    }

    fn register(ds: &mut Dataset, profiles: Vec<WorkerProfile>, rng: StdRng) -> Self {
        let ids = (0..profiles.len())
            .map(|i| ds.intern_worker(&format!("sim-worker-{i}")))
            .collect();
        WorkerPool { profiles, ids, rng }
    }

    /// The dataset worker ids of this pool.
    pub fn ids(&self) -> &[WorkerId] {
        &self.ids
    }

    /// The profile backing worker `w`, if it belongs to this pool.
    pub fn profile(&self, w: WorkerId) -> Option<&WorkerProfile> {
        self.ids
            .iter()
            .position(|&x| x == w)
            .map(|i| &self.profiles[i])
    }

    /// Produce `w`'s answer for object `o`: the candidate-mapped truth with
    /// probability `p_w`, otherwise a uniformly random candidate. Returns
    /// `None` for objects without candidates or unknown workers.
    pub fn answer(
        &mut self,
        ds: &Dataset,
        idx: &ObservationIndex,
        w: WorkerId,
        o: ObjectId,
    ) -> Option<NodeId> {
        let pos = self.ids.iter().position(|&x| x == w)?;
        let view = idx.view(o);
        if view.candidates.is_empty() {
            return None;
        }
        let p = self.profiles[pos].p_correct;
        let truth = mapped_gold(ds, idx, o).filter(|t| view.cand_index(*t).is_some());
        if let Some(t) = truth {
            if self.rng.random::<f64>() < p {
                return Some(t);
            }
        }
        let pick = self.rng.random_range(0..view.candidates.len());
        Some(view.candidates[pick])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdh_hierarchy::HierarchyBuilder;

    fn fixture() -> (Dataset, ObservationIndex, ObjectId) {
        let mut b = HierarchyBuilder::new();
        b.add_path(&["X", "A"]);
        b.add_path(&["X", "B"]);
        b.add_path(&["X", "C"]);
        let mut ds = Dataset::new(b.build());
        let o = ds.intern_object("o");
        let a = ds.hierarchy().node_by_name("A").unwrap();
        let bb = ds.hierarchy().node_by_name("B").unwrap();
        let c = ds.hierarchy().node_by_name("C").unwrap();
        let s1 = ds.intern_source("s1");
        let s2 = ds.intern_source("s2");
        let s3 = ds.intern_source("s3");
        ds.add_record(o, s1, a);
        ds.add_record(o, s2, bb);
        ds.add_record(o, s3, c);
        ds.set_gold(o, a);
        let idx = ObservationIndex::build(&ds);
        (ds, idx, o)
    }

    #[test]
    fn reliability_controls_correctness_rate() {
        let (mut ds, idx, o) = fixture();
        let mut pool = WorkerPool::uniform(&mut ds, 1, 0.75, 7);
        let w = pool.ids()[0];
        let gold = ds.gold(o).unwrap();
        let n = 4000;
        let correct = (0..n)
            .filter(|_| pool.answer(&ds, &idx, w, o) == Some(gold))
            .count();
        let rate = correct as f64 / n as f64;
        // p ± 0.05 plus the 1/3 chance of a random pick landing right:
        // expected ≈ p + (1 − p)/3 ∈ [0.76, 0.87].
        assert!(rate > 0.72 && rate < 0.92, "correct rate {rate}");
    }

    #[test]
    fn pools_register_distinct_workers() {
        let (mut ds, _, _) = fixture();
        let pool = WorkerPool::uniform(&mut ds, 10, 0.75, 1);
        assert_eq!(pool.ids().len(), 10);
        assert_eq!(ds.n_workers(), 10);
        let p = pool.profile(pool.ids()[3]).unwrap();
        assert!((0.70..=0.80).contains(&p.p_correct));
    }

    #[test]
    fn amt_pool_is_heterogeneous() {
        let (mut ds, _, _) = fixture();
        let pool = WorkerPool::amt(&mut ds, 20, 2);
        let ps: Vec<f64> = (0..20)
            .map(|i| pool.profile(pool.ids()[i]).unwrap().p_correct)
            .collect();
        let spread = ps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.2, "AMT reliabilities should vary: {spread}");
    }

    #[test]
    fn unknown_worker_yields_none() {
        let (mut ds, idx, o) = fixture();
        let mut pool = WorkerPool::uniform(&mut ds, 1, 0.75, 3);
        assert_eq!(pool.answer(&ds, &idx, WorkerId(99), o), None);
    }

    #[test]
    fn answers_are_always_candidates() {
        let (mut ds, idx, o) = fixture();
        let mut pool = WorkerPool::uniform(&mut ds, 3, 0.5, 11);
        for _ in 0..200 {
            for &w in &pool.ids().to_vec() {
                let ans = pool.answer(&ds, &idx, w, o).unwrap();
                assert!(idx.view(o).cand_index(ans).is_some());
            }
        }
    }
}
