//! The round-based crowdsourcing simulation engine.

use std::time::{Duration, Instant};

use tdh_core::{eai, Assignment, ProbabilisticCrowdModel, TaskAssigner};
use tdh_data::{Dataset, ObservationIndex};
use tdh_eval::{single_truth_report_with_index, SingleTruthReport};

use crate::workers::WorkerPool;

/// Parameters of a simulated crowdsourcing campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Number of rounds (the paper runs 50 for simulation, 20 for humans).
    pub rounds: usize,
    /// Questions per worker per round (paper: 5).
    pub tasks_per_worker: usize,
    /// Threads for the campaign's initial [`ObservationIndex`] build,
    /// resolved like `TdhConfig::n_threads` (`0` = auto via `TDH_N_THREADS`
    /// or the available parallelism, `1` = sequential). The parallel build
    /// is field-for-field identical to the sequential one, so this knob
    /// never changes campaign results. Per-round *inference* threading
    /// rides on the model's own configuration (each TDH fit spawns one
    /// persistent pool and reuses it across its EM iterations), as does
    /// round-to-round **warm starting**: with `TdhConfig::warm_start` on
    /// (the default), every round after the first seeds EM from the
    /// previous round's posterior, so per-round fits converge in a
    /// handful of iterations instead of refitting cold.
    pub n_threads: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            rounds: 50,
            tasks_per_worker: 5,
            n_threads: 0,
        }
    }
}

/// Quality and cost measurements for one round.
#[derive(Debug, Clone)]
pub struct RoundMetrics {
    /// Round number (0 = before any crowdsourcing).
    pub round: usize,
    /// Quality of the inferred truths at the *start* of the round (i.e.
    /// after incorporating all answers from earlier rounds).
    pub report: SingleTruthReport,
    /// Wall-clock time of the inference step.
    pub infer_time: Duration,
    /// Wall-clock time of the assignment step.
    pub assign_time: Duration,
    /// Number of answers collected in this round.
    pub answers_collected: usize,
    /// The assigner's own estimate of the accuracy improvement its batch
    /// will deliver (Fig. 7's "ESTIMATED" series); `None` when the assigner
    /// has no such estimate (ME, MB).
    pub estimated_improvement: Option<f64>,
}

/// The outcome of a full simulation.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Inference algorithm name.
    pub model: &'static str,
    /// Assigner name.
    pub assigner: &'static str,
    /// One entry per round, plus a final entry for the post-campaign state.
    pub rounds: Vec<RoundMetrics>,
}

impl SimulationResult {
    /// The accuracy trajectory (round → Accuracy).
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.report.accuracy).collect()
    }

    /// Accuracy after the final round.
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map(|r| r.report.accuracy).unwrap_or(0.0)
    }

    /// Fig. 7's actual improvement series: the per-round delta of accuracy
    /// (aligned so `actual[i]` is the improvement delivered by round `i`'s
    /// batch).
    pub fn actual_improvements(&self) -> Vec<f64> {
        self.rounds
            .windows(2)
            .map(|w| w[1].report.accuracy - w[0].report.accuracy)
            .collect()
    }
}

/// The per-round estimate the paper plots in Fig. 7: what the assigner
/// *thinks* its batch is worth. For EAI this is the sum of the exact
/// quality measure over the batch (already normalised by |O|); for QASCA,
/// the sum of its record-count-blind Bayes-update estimates.
fn estimated_gain(
    assigner_name: &str,
    model: &dyn ProbabilisticCrowdModel,
    idx: &ObservationIndex,
    batches: &[Assignment],
) -> Option<f64> {
    let n = idx.n_objects();
    match assigner_name {
        "EAI" => Some(
            batches
                .iter()
                .flat_map(|b| {
                    b.objects
                        .iter()
                        .map(move |&o| eai(model, idx, o, b.worker, n))
                })
                .sum(),
        ),
        "QASCA" => {
            // QASCA's published measure: confidence gain of a single Bayes
            // update (expectation over answers, no evidence damping).
            let mut total = 0.0;
            for b in batches {
                for &o in &b.objects {
                    let mu = model.confidence(o);
                    let cur = mu.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let k = idx.view(o).n_candidates();
                    let mut exp = 0.0;
                    for c in 0..k as u32 {
                        let p = model.answer_likelihood(idx, o, b.worker, c);
                        if p <= 0.0 {
                            continue;
                        }
                        // Bayes update with the symmetric worker model.
                        let q = model.worker_exact_prob(b.worker).clamp(1e-6, 1.0 - 1e-6);
                        let mut post: Vec<f64> = (0..k as u32)
                            .map(|t| {
                                let lik = if c == t {
                                    q
                                } else {
                                    (1.0 - q) / (k - 1).max(1) as f64
                                };
                                mu[t as usize] * lik
                            })
                            .collect();
                        let z: f64 = post.iter().sum();
                        if z > 0.0 {
                            post.iter_mut().for_each(|x| *x /= z);
                        }
                        exp += p * post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    }
                    total += (exp - cur) / n as f64;
                }
            }
            Some(total)
        }
        _ => None,
    }
}

/// Run a crowdsourcing campaign: `cfg.rounds` rounds of infer → assign →
/// answer. The dataset is mutated in place (answers are appended), so pass a
/// clone when the original must stay pristine.
///
/// The returned metrics contain `rounds + 1` entries: index `r` reports the
/// quality *after* `r` rounds of crowdsourcing (index 0 = no crowdsourcing,
/// matching the paper's round-0 points).
pub fn run_simulation(
    ds: &mut Dataset,
    model: &mut dyn ProbabilisticCrowdModel,
    assigner: &mut dyn TaskAssigner,
    pool: &mut WorkerPool,
    cfg: &SimulationConfig,
) -> SimulationResult {
    let mut idx =
        ObservationIndex::build_threaded(ds, tdh_core::par::effective_threads(cfg.n_threads));
    let mut rounds = Vec::with_capacity(cfg.rounds + 1);

    for round in 0..=cfg.rounds {
        let t0 = Instant::now();
        let est = model.infer(ds, &idx);
        let infer_time = t0.elapsed();
        let report = single_truth_report_with_index(ds, &idx, &est.truths);

        if round == cfg.rounds {
            rounds.push(RoundMetrics {
                round,
                report,
                infer_time,
                assign_time: Duration::ZERO,
                answers_collected: 0,
                estimated_improvement: None,
            });
            break;
        }

        let t1 = Instant::now();
        let batches = assigner.assign(model, ds, &idx, pool.ids(), cfg.tasks_per_worker);
        let assign_time = t1.elapsed();
        let estimated = estimated_gain(assigner.name(), model, &idx, &batches);

        let mut collected = 0;
        for b in &batches {
            for &o in &b.objects {
                if let Some(v) = pool.answer(ds, &idx, b.worker, o) {
                    ds.add_answer(o, b.worker, v);
                    idx.push_answer(*ds.answers().last().expect("just appended"));
                    collected += 1;
                }
            }
        }

        rounds.push(RoundMetrics {
            round,
            report,
            infer_time,
            assign_time,
            answers_collected: collected,
            estimated_improvement: estimated,
        });
    }

    SimulationResult {
        model: model.name(),
        assigner: assigner.name(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformAdapter;
    use tdh_baselines::{MeAssigner, Vote};
    use tdh_core::{EaiAssigner, TdhConfig, TdhModel};
    use tdh_datagen::{generate_birthplaces, BirthPlacesConfig};

    fn small_corpus(seed: u64) -> Dataset {
        let cfg = BirthPlacesConfig {
            n_objects: 150,
            hierarchy_nodes: 300,
        };
        generate_birthplaces(&cfg, seed).dataset
    }

    #[test]
    fn tdh_eai_improves_accuracy_over_rounds() {
        let mut ds = small_corpus(1);
        let mut pool = WorkerPool::uniform(&mut ds, 10, 0.75, 1);
        let mut model = TdhModel::new(TdhConfig::default());
        let mut assigner = EaiAssigner::new();
        let cfg = SimulationConfig {
            rounds: 8,
            tasks_per_worker: 5,
            ..Default::default()
        };
        let result = run_simulation(&mut ds, &mut model, &mut assigner, &mut pool, &cfg);
        assert_eq!(result.rounds.len(), 9);
        let first = result.rounds.first().unwrap().report.accuracy;
        let last = result.final_accuracy();
        assert!(last > first, "crowdsourcing should help: {first} -> {last}");
        // Estimated improvements exist for EAI and are finite.
        for r in &result.rounds[..8] {
            let e = r.estimated_improvement.expect("EAI estimates");
            assert!(e.is_finite());
        }
    }

    #[test]
    fn vote_me_combo_runs_and_collects_answers() {
        let mut ds = small_corpus(2);
        let mut pool = WorkerPool::uniform(&mut ds, 5, 0.8, 2);
        let mut model = UniformAdapter::new(Vote);
        let mut assigner = MeAssigner;
        let cfg = SimulationConfig {
            rounds: 4,
            tasks_per_worker: 3,
            ..Default::default()
        };
        let before = ds.answers().len();
        let result = run_simulation(&mut ds, &mut model, &mut assigner, &mut pool, &cfg);
        let collected: usize = result.rounds.iter().map(|r| r.answers_collected).sum();
        assert_eq!(ds.answers().len() - before, collected);
        assert!(collected > 0);
        assert_eq!(result.model, "VOTE");
        assert_eq!(result.assigner, "ME");
        // ME has no self-estimate.
        assert!(result.rounds[0].estimated_improvement.is_none());
    }

    #[test]
    fn sharded_tdh_runs_the_crowdsourcing_loop() {
        // The E-step thread count rides into the loop on TdhConfig; the
        // first-round inference (same records, no assignment decisions yet)
        // must match the sequential path exactly, and the campaign must run
        // to completion under sharding.
        let run = |n_threads: usize| {
            let mut ds = small_corpus(4);
            let mut pool = WorkerPool::uniform(&mut ds, 6, 0.8, 4);
            let mut model = TdhModel::new(TdhConfig {
                n_threads,
                ..Default::default()
            });
            let mut assigner = EaiAssigner::new();
            let cfg = SimulationConfig {
                rounds: 3,
                tasks_per_worker: 4,
                n_threads,
            };
            run_simulation(&mut ds, &mut model, &mut assigner, &mut pool, &cfg)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(
            seq.rounds[0].report.accuracy, par.rounds[0].report.accuracy,
            "round-0 inference must agree exactly across thread counts"
        );
        assert_eq!(par.rounds.len(), 4);
        assert!(par.final_accuracy() >= par.rounds[0].report.accuracy - 0.05);
    }

    #[test]
    fn rounds_warm_start_instead_of_refitting_cold() {
        // ROADMAP PR-3 follow-up: the per-round `model.infer` used to refit
        // cold every round. With warm starts on (the default TdhConfig),
        // the last round's fit must resume from the previous posterior and
        // converge in fewer iterations than a cold fit of the same data.
        let mut ds = small_corpus(5);
        let mut pool = WorkerPool::uniform(&mut ds, 8, 0.8, 5);
        let mut model = TdhModel::new(TdhConfig::default());
        let mut assigner = EaiAssigner::new();
        let cfg = SimulationConfig {
            rounds: 4,
            tasks_per_worker: 5,
            ..Default::default()
        };
        run_simulation(&mut ds, &mut model, &mut assigner, &mut pool, &cfg);
        let warm_iters = model.fit_report().expect("rounds ran").iterations;

        // Cold reference on the final dataset (same records + answers).
        let mut cold = TdhModel::new(TdhConfig {
            warm_start: false,
            ..Default::default()
        });
        cold.fit(&ds);
        let cold_iters = cold.fit_report().unwrap().iterations;
        assert!(
            warm_iters < cold_iters,
            "last round ran {warm_iters} EM iterations, cold fit {cold_iters}"
        );
    }

    #[test]
    fn improvement_series_aligns() {
        let mut ds = small_corpus(3);
        let mut pool = WorkerPool::uniform(&mut ds, 4, 0.9, 3);
        let mut model = TdhModel::new(TdhConfig::default());
        let mut assigner = EaiAssigner::new();
        let cfg = SimulationConfig {
            rounds: 3,
            tasks_per_worker: 4,
            ..Default::default()
        };
        let result = run_simulation(&mut ds, &mut model, &mut assigner, &mut pool, &cfg);
        assert_eq!(result.actual_improvements().len(), 3);
        assert_eq!(result.accuracy_series().len(), 4);
    }
}
