//! The crowdsourced truth-discovery loop (paper Fig. 2) and the simulated
//! worker pools behind §5.4–§5.6.
//!
//! The engine alternates *truth inference* and *task assignment* until the
//! crowdsourcing budget (a round count) runs out:
//!
//! 1. fit the inference model on all records + answers collected so far;
//! 2. ask the task assigner for the top-`k` objects per available worker;
//! 3. collect one simulated answer per assigned `(worker, object)` pair;
//! 4. append the answers and go to 1.
//!
//! [`run_simulation`] drives any [`ProbabilisticCrowdModel`] with any
//! [`TaskAssigner`]; [`UniformAdapter`] upgrades a plain [`TruthDiscovery`]
//! algorithm (VOTE, CRH, …) into a crowd model with a symmetric-error worker
//! assumption so that every inference × assignment combination of Table 4
//! runs through one code path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adapter;
mod sim;
pub mod workers;

pub use adapter::UniformAdapter;
pub use sim::{run_simulation, RoundMetrics, SimulationConfig, SimulationResult};
pub use workers::{WorkerPool, WorkerProfile};

pub use tdh_core::{ProbabilisticCrowdModel, TaskAssigner, TruthDiscovery};
