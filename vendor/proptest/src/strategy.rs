//! The [`Strategy`] trait and the built-in strategies (ranges, tuples,
//! `prop_map`).

use crate::test_runner::TestRng;
use core::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `fun(v)` for `v` drawn from `self`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, fun }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.fun)(self.source.new_value(rng))
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.$method(self.clone())
            }
        }
    )*};
}

range_strategy_impls! {
    usize => uniform_usize,
    u32 => uniform_u32,
    u64 => uniform_u64,
    i32 => uniform_i32,
    i64 => uniform_i64,
    f64 => uniform_f64,
}

macro_rules! tuple_strategy_impls {
    ($(($($s:ident $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
}
