//! Test configuration and the per-test RNG.

use core::ops::Range;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property (default 64).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG behind a property test, seeded from the test name
/// so every run (and every CI machine) replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a (64-bit) over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Uniform `usize` in `range`.
    pub fn uniform_usize(&mut self, range: Range<usize>) -> usize {
        self.inner.random_range(range)
    }

    /// Uniform `u32` in `range`.
    pub fn uniform_u32(&mut self, range: Range<u32>) -> u32 {
        self.inner.random_range(range)
    }

    /// Uniform `u64` in `range`.
    pub fn uniform_u64(&mut self, range: Range<u64>) -> u64 {
        self.inner.random_range(range)
    }

    /// Uniform `i32` in `range`.
    pub fn uniform_i32(&mut self, range: Range<i32>) -> i32 {
        self.inner.random_range(range)
    }

    /// Uniform `i64` in `range`.
    pub fn uniform_i64(&mut self, range: Range<i64>) -> i64 {
        self.inner.random_range(range)
    }

    /// Uniform `f64` in `range`.
    pub fn uniform_f64(&mut self, range: Range<f64>) -> f64 {
        self.inner.random_range(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.uniform_u64(0..u64::MAX), b.uniform_u64(0..u64::MAX));
        let mut c = TestRng::for_test("y");
        assert_ne!(
            TestRng::for_test("x").uniform_u64(0..u64::MAX),
            c.uniform_u64(0..u64::MAX)
        );
    }
}
