//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]` header), `ProptestConfig::with_cases` and the
//! `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a deterministic per-test RNG (seeded from the test name)
//! rather than an adaptive runner, and there is **no shrinking** — a failing
//! case reports the assertion directly. Both keep runs reproducible without
//! the upstream dependency tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A strategy for `Vec<E::Value>` with a length drawn from `len`.
    pub fn vec<E: Strategy>(element: E, len: Range<usize>) -> VecStrategy<E> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        element: E,
        len: Range<usize>,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.uniform_usize(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The subset of names a proptest test file conventionally glob-imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests: each function runs `ProptestConfig::cases` times
/// on freshly drawn inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1_000, b in 0u32..1_000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr)
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ($($strat,)+);
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let ($($arg,)+) = $crate::strategy::Strategy::new_value(
                        &__strategies,
                        &mut __rng,
                    );
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
