//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the `rand` 0.9 API subset the workspace
//! uses: the [`Rng`] and [`SeedableRng`] traits (`random`, `random_range`,
//! `random_bool`) and a deterministic [`rngs::StdRng`] built on
//! xoshiro256++ seeded via SplitMix64. It is API-compatible with the real
//! crate for these entry points, so swapping the real dependency back in is
//! a one-line `Cargo.toml` change; the streams differ from upstream
//! `StdRng` (which is ChaCha12), which only shifts which deterministic
//! corpora the seeds denote.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an [`Rng`]'s raw output.
///
/// Mirrors sampling from `rand`'s `StandardUniform` distribution.
pub trait SampleStandard {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly; mirrors `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// A source of randomness; the subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// The raw generator output: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` (for `f64`/`f32`: uniform in `[0, 1)`).
    fn random<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators constructible from a seed; the subset of `rand::SeedableRng`
/// this workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; same API, different — but still high-quality — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_samples_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_cover_endpoints_correctly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: usize = rng.random_range(0..=2);
            seen[v] = true;
            let w: i32 = rng.random_range(-3..3);
            assert!((-3..3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s));
        // Full-width range must not overflow.
        let _: usize = rng.random_range(0..usize::MAX);
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}/10000");
    }
}
