//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the criterion API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a deliberately
//! simple measurement loop: a short warm-up, then timed batches until
//! ~`measurement_millis` of wall clock, reporting the mean time per
//! iteration. No statistics, plots, or baselines; swap the real criterion
//! back in for publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
    measurement_millis: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_millis: 300,
        }
    }
}

impl Criterion {
    /// Run `f` as the benchmark named `id` and print its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        run_one(id, self.measurement_millis, self.sample_size, &mut f);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    // Group-scoped, as in real criterion: a group's sample_size must not
    // leak into benchmarks run after the group finishes.
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of iterations per benchmark in this group (the
    /// criterion knob slow benches use to bound wall clock).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run `f` with `input` as the benchmark `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.criterion.measurement_millis,
            self.sample_size,
            &mut |b| f(b, input),
        );
    }

    /// Run `f` as the benchmark `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.measurement_millis,
            self.sample_size,
            &mut f,
        );
    }

    /// Close the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, a parameter, or both.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// measured routine.
pub struct Bencher {
    measurement: Duration,
    max_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine`, running it repeatedly until the measurement
    /// window is filled or the iteration cap is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches and lazy statics).
        black_box(routine());
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement || iters >= self.max_iters {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement_millis: u64,
    sample_size: usize,
    f: &mut F,
) {
    let mut b = Bencher {
        measurement: Duration::from_millis(measurement_millis),
        max_iters: (sample_size as u64).max(1) * 50,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<50} (routine never called iter)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!(
        "{label:<50} {:>12} / iter ({} iters)",
        format_time(per_iter),
        b.iters
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundle benchmark functions into a single runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_millis: 5,
        };
        let mut ran = 0u64;
        c.bench_function("self-test", |b| b.iter(|| ran += 1));
        assert!(ran > 1);
        let mut group = c.benchmark_group("group");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("with-input", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 4).label, "f/4");
        assert_eq!(BenchmarkId::from_parameter("EAI").label, "EAI");
    }
}
